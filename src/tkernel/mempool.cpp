// Memory pool service calls: fixed-size (tk_*_mpf) and variable-size
// (tk_*_mpl) pools. The variable pool is a first-fit allocator with
// coalescing free extents; blocked allocators are served strictly in
// queue order, as µ-ITRON requires.
#include "tkernel/kernel.hpp"

#include <cstddef>
#include <cstdint>

namespace rtk::tkernel {

namespace {
constexpr INT mpl_align = 8;
INT align_up(INT n) {
    return (n + mpl_align - 1) / mpl_align * mpl_align;
}
}  // namespace

// ---- fixed-size pool -----------------------------------------------------------

ID TKernel::tk_cre_mpf(const T_CMPF& pk) {
    ServiceSection svc(*this);
    if (pk.mpfcnt <= 0 || pk.blfsz <= 0) {
        return E_PAR;
    }
    auto p = std::make_unique<FixedPool>();
    p->name = pk.name;
    p->exinf = pk.exinf;
    p->atr = pk.mpfatr;
    p->blkcnt = pk.mpfcnt;
    p->blksz = pk.blfsz;
    p->arena.resize(static_cast<std::size_t>(pk.mpfcnt) *
                    static_cast<std::size_t>(pk.blfsz));
    p->free_list.reserve(pk.mpfcnt);
    for (INT i = pk.mpfcnt - 1; i >= 0; --i) {
        p->free_list.push_back(p->arena.data() +
                               static_cast<std::size_t>(i) * pk.blfsz);
    }
    p->queue.set_priority_ordered((pk.mpfatr & TA_TPRI) != 0);
    return mpfs_.add(std::move(p));
}

ER TKernel::tk_del_mpf(ID mpfid) {
    ServiceSection svc(*this);
    FixedPool* p = mpfs_.find(mpfid);
    if (p == nullptr) {
        return mpfid <= 0 ? E_ID : E_NOEXS;
    }
    flush_waiters(p->queue);
    mpfs_.erase(mpfid);
    return E_OK;
}

ER TKernel::tk_get_mpf(ID mpfid, void** p_blf, TMO tmout) {
    ServiceSection svc(*this);
    FixedPool* p = mpfs_.find(mpfid);
    if (p == nullptr) {
        return mpfid <= 0 ? E_ID : E_NOEXS;
    }
    if (p_blf == nullptr) {
        return E_PAR;
    }
    TCB* me = current_tcb();
    // Queued waiters have precedence, unless a TA_TPRI newcomer would
    // head the queue anyway.
    const bool may_take =
        p->queue.empty() || (me != nullptr && p->queue.would_lead(*me));
    if (may_take && !p->free_list.empty()) {
        *p_blf = p->free_list.back();
        p->free_list.pop_back();
        return E_OK;
    }
    if (tmout == TMO_POL) {
        return E_TMOUT;
    }
    if (me == nullptr) {
        return E_CTX;
    }
    me->blk = nullptr;
    const ER er = block_current(*me, WaitKind::mempool_fixed, mpfid, &p->queue,
                                tmout, E_TMOUT, svc);
    if (er == E_OK) {
        *p_blf = me->blk;
    }
    return er;
}

void TKernel::mpf_serve(FixedPool& p) {
    while (!p.free_list.empty()) {
        TCB* w = p.queue.front();
        if (w == nullptr) {
            return;
        }
        w->blk = p.free_list.back();
        p.free_list.pop_back();
        release_wait(*w, E_OK);
    }
}

ER TKernel::tk_rel_mpf(ID mpfid, void* blf) {
    ServiceSection svc(*this);
    FixedPool* p = mpfs_.find(mpfid);
    if (p == nullptr) {
        return mpfid <= 0 ? E_ID : E_NOEXS;
    }
    auto* base = p->arena.data();
    auto* b = static_cast<std::uint8_t*>(blf);
    const std::ptrdiff_t off = b - base;
    if (b == nullptr || off < 0 ||
        off >= static_cast<std::ptrdiff_t>(p->arena.size()) || off % p->blksz != 0) {
        return E_PAR;
    }
    for (void* f : p->free_list) {
        if (f == blf) {
            return E_PAR;  // double free
        }
    }
    p->free_list.push_back(blf);
    mpf_serve(*p);
    return E_OK;
}

ER TKernel::tk_ref_mpf(ID mpfid, T_RMPF* pk) const {
    if (pk == nullptr) {
        return E_PAR;
    }
    FixedPool* p = mpfs_.find(mpfid);
    if (p == nullptr) {
        return mpfid <= 0 ? E_ID : E_NOEXS;
    }
    pk->exinf = p->exinf;
    pk->frbcnt = static_cast<INT>(p->free_list.size());
    pk->wtsk = p->queue.empty() ? 0 : p->queue.front()->id;
    return E_OK;
}

// ---- variable-size pool -----------------------------------------------------------

ID TKernel::tk_cre_mpl(const T_CMPL& pk) {
    ServiceSection svc(*this);
    if (pk.mplsz <= 0) {
        return E_PAR;
    }
    auto p = std::make_unique<VariablePool>();
    p->name = pk.name;
    p->exinf = pk.exinf;
    p->atr = pk.mplatr;
    p->poolsz = align_up(pk.mplsz);
    p->arena.resize(static_cast<std::size_t>(p->poolsz));
    p->free_map.emplace(0, p->poolsz);
    p->queue.set_priority_ordered((pk.mplatr & TA_TPRI) != 0);
    return mpls_.add(std::move(p));
}

ER TKernel::tk_del_mpl(ID mplid) {
    ServiceSection svc(*this);
    VariablePool* p = mpls_.find(mplid);
    if (p == nullptr) {
        return mplid <= 0 ? E_ID : E_NOEXS;
    }
    flush_waiters(p->queue);
    mpls_.erase(mplid);
    return E_OK;
}

namespace {
/// First-fit allocation from the free map; nullptr when nothing fits.
void* mpl_alloc(VariablePool& p, INT size) {
    for (auto it = p.free_map.begin(); it != p.free_map.end(); ++it) {
        if (it->second >= size) {
            const INT off = it->first;
            const INT len = it->second;
            p.free_map.erase(it);
            if (len > size) {
                p.free_map.emplace(off + size, len - size);
            }
            void* ptr = p.arena.data() + off;
            p.allocated.emplace(ptr, std::make_pair(off, size));
            return ptr;
        }
    }
    return nullptr;
}
}  // namespace

ER TKernel::tk_get_mpl(ID mplid, INT blksz, void** p_blk, TMO tmout) {
    ServiceSection svc(*this);
    VariablePool* p = mpls_.find(mplid);
    if (p == nullptr) {
        return mplid <= 0 ? E_ID : E_NOEXS;
    }
    if (p_blk == nullptr || blksz <= 0 || blksz > p->poolsz) {
        return E_PAR;
    }
    const INT size = align_up(blksz);
    TCB* me = current_tcb();
    if (p->queue.empty() || (me != nullptr && p->queue.would_lead(*me))) {
        if (void* ptr = mpl_alloc(*p, size)) {
            *p_blk = ptr;
            return E_OK;
        }
    }
    if (tmout == TMO_POL) {
        return E_TMOUT;
    }
    if (me == nullptr) {
        return E_CTX;
    }
    me->blk = nullptr;
    me->req_size = size;
    const ER er = block_current(*me, WaitKind::mempool_var, mplid, &p->queue, tmout,
                                E_TMOUT, svc);
    if (er == E_OK) {
        *p_blk = me->blk;
    }
    return er;
}

ER TKernel::tk_rel_mpl(ID mplid, void* blk) {
    ServiceSection svc(*this);
    VariablePool* p = mpls_.find(mplid);
    if (p == nullptr) {
        return mplid <= 0 ? E_ID : E_NOEXS;
    }
    auto it = p->allocated.find(blk);
    if (it == p->allocated.end()) {
        return E_PAR;
    }
    auto [off, len] = it->second;
    p->allocated.erase(it);
    // Insert and coalesce with neighbours.
    auto ins = p->free_map.emplace(off, len).first;
    if (ins != p->free_map.begin()) {
        auto prev = std::prev(ins);
        if (prev->first + prev->second == ins->first) {
            prev->second += ins->second;
            p->free_map.erase(ins);
            ins = prev;
        }
    }
    auto next = std::next(ins);
    if (next != p->free_map.end() && ins->first + ins->second == next->first) {
        ins->second += next->second;
        p->free_map.erase(next);
    }
    mpl_serve(*p);
    return E_OK;
}

void TKernel::mpl_serve(VariablePool& p) {
    // Serve blocked allocators strictly in queue order.
    while (TCB* w = p.queue.front()) {
        void* ptr = mpl_alloc(p, w->req_size);
        if (ptr == nullptr) {
            return;
        }
        p.queue.pop_front();
        w->blk = ptr;
        release_wait(*w, E_OK);
    }
}

ER TKernel::tk_ref_mpl(ID mplid, T_RMPL* pk) const {
    if (pk == nullptr) {
        return E_PAR;
    }
    VariablePool* p = mpls_.find(mplid);
    if (p == nullptr) {
        return mplid <= 0 ? E_ID : E_NOEXS;
    }
    pk->exinf = p->exinf;
    pk->frsz = p->total_free();
    pk->maxsz = p->largest_free();
    pk->wtsk = p->queue.empty() ? 0 : p->queue.front()->id;
    return E_OK;
}

}  // namespace rtk::tkernel
