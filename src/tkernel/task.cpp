// Task management service calls (tk_cre_tsk ... tk_ref_tsk).
#include "tkernel/kernel.hpp"

namespace rtk::tkernel {

using sim::ExecContext;
using sim::ThreadKind;
using sim::ThreadState;

namespace {
bool valid_priority(PRI p) {
    return p >= min_priority && p <= max_priority;
}
}  // namespace

UINT wait_kind_to_ttw(WaitKind k) {
    switch (k) {
        case WaitKind::none: return 0;
        case WaitKind::sleep: return TTW_SLP;
        case WaitKind::delay: return TTW_DLY;
        case WaitKind::semaphore: return TTW_SEM;
        case WaitKind::eventflag: return TTW_FLG;
        case WaitKind::mailbox: return TTW_MBX;
        case WaitKind::mutex: return TTW_MTX;
        case WaitKind::msgbuf_snd: return TTW_SMBF;
        case WaitKind::msgbuf_rcv: return TTW_RMBF;
        case WaitKind::mempool_fixed: return TTW_MPF;
        case WaitKind::mempool_var: return TTW_MPL;
    }
    return 0;
}

const char* to_string(WaitKind k) {
    switch (k) {
        case WaitKind::none: return "-";
        case WaitKind::sleep: return "SLP";
        case WaitKind::delay: return "DLY";
        case WaitKind::semaphore: return "SEM";
        case WaitKind::eventflag: return "FLG";
        case WaitKind::mailbox: return "MBX";
        case WaitKind::mutex: return "MTX";
        case WaitKind::msgbuf_snd: return "SMBF";
        case WaitKind::msgbuf_rcv: return "RMBF";
        case WaitKind::mempool_fixed: return "MPF";
        case WaitKind::mempool_var: return "MPL";
    }
    return "?";
}

// ---- creation / deletion ------------------------------------------------------

ID TKernel::tk_cre_tsk(const T_CTSK& pk) {
    ServiceSection svc(*this);
    if (!pk.task) {
        return E_PAR;
    }
    if (!valid_priority(pk.itskpri)) {
        return E_PAR;
    }
    auto tcb = std::make_unique<TCB>();
    tcb->name = pk.name;
    tcb->exinf = pk.exinf;
    tcb->atr = pk.tskatr;
    tcb->ipri = pk.itskpri;
    tcb->stksz = pk.stksz;
    tcb->entry = pk.task;
    TCB* p = tcb.get();
    const ID id = tasks_.add(std::move(tcb));
    if (id < 0) {
        return id;  // E_LIMIT
    }
    p->thread = &api_->SIM_CreateThread(pk.name, ThreadKind::task, pk.itskpri, [this, p] {
        // Activation prologue: the startup transition consumes startup-
        // context ETM (paper: transitions mapped "at startup").
        api_->SIM_WaitUnits(cfg_.service_cost_units, ExecContext::startup);
        // RAII cleanup covers normal exit, tk_ext_tsk and termination:
        // held mutexes are released, queued wakeups cleared.
        struct ExitCleanup {
            TKernel& k;
            TCB& t;
            ~ExitCleanup() { k.task_cleanup(t); }
        } guard{*this, *p};
        p->entry(p->stacd, p->exinf);
    });
    p->thread->set_user_data(p);
    return id;
}

ER TKernel::tk_del_tsk(ID tskid) {
    ServiceSection svc(*this);
    TCB* t = nullptr;
    if (ER er = check_task_id(tskid, t); er != E_OK) {
        return er;
    }
    if (t == current_tcb()) {
        return E_OBJ;  // a task cannot delete itself (use tk_exd_tsk)
    }
    if (t->thread->state() != ThreadState::dormant) {
        return E_OBJ;
    }
    api_->SIM_DeleteThread(*t->thread);
    tasks_.erase(t->id);
    return E_OK;
}

// ---- activation ------------------------------------------------------------------

ER TKernel::tk_sta_tsk(ID tskid, INT stacd) {
    ServiceSection svc(*this);
    TCB* t = nullptr;
    if (ER er = check_task_id(tskid, t); er != E_OK) {
        return er;
    }
    if (t->thread->state() != ThreadState::dormant) {
        return E_OBJ;
    }
    t->stacd = stacd;
    t->wakeup_count = 0;
    // A task always starts at its initial priority (µ-ITRON).
    api_->SIM_ChangePriority(*t->thread, t->ipri);
    api_->SIM_StartThread(*t->thread);
    return E_OK;
}

void TKernel::tk_ext_tsk() {
    if (!in_task_context()) {
        sysc::report(sysc::Severity::fatal, "tkernel",
                     "tk_ext_tsk called outside task context");
    }
    api_->SIM_Exit();
}

void TKernel::tk_exd_tsk() {
    TCB* me = current_tcb();
    if (me == nullptr) {
        sysc::report(sysc::Severity::fatal, "tkernel",
                     "tk_exd_tsk called outside task context");
    }
    exd_pending_.push_back(me->id);  // reaped by the timer handler
    api_->SIM_Exit();
}

ER TKernel::tk_ter_tsk(ID tskid) {
    ServiceSection svc(*this);
    TCB* t = nullptr;
    if (ER er = check_task_id(tskid, t); er != E_OK) {
        return er;
    }
    if (t == current_tcb()) {
        return E_OBJ;  // self-termination is tk_ext_tsk
    }
    if (t->thread->state() == ThreadState::dormant) {
        return E_OBJ;
    }
    cancel_task_timeout(*t);
    const WaitKind kind = t->wait_kind;
    const ID obj = t->wait_obj;
    if (t->queue != nullptr) {
        Mutex* mtx = (kind == WaitKind::mutex) ? mtxs_.find(obj) : nullptr;
        t->queue->remove(*t);
        if (mtx != nullptr && mtx->owner != nullptr) {
            recompute_priority(*mtx->owner);
        }
    }
    t->wait_kind = WaitKind::none;
    // SIM_Terminate unwinds the task's coroutine; the ExitCleanup guard on
    // that stack releases held mutexes on the way out.
    api_->SIM_Terminate(*t->thread);
    reevaluate_waiters(kind, obj);
    return E_OK;
}

void TKernel::task_cleanup(TCB& tcb) {
    while (!tcb.held_mutexes.empty()) {
        const ID mid = tcb.held_mutexes.back();
        Mutex* m = mtxs_.find(mid);
        if (m == nullptr) {
            tcb.held_mutexes.pop_back();
            continue;
        }
        unlock_mutex_internal(*m, tcb);
    }
    tcb.wakeup_count = 0;
    cancel_task_timeout(tcb);
    tcb.wait_kind = WaitKind::none;
    tcb.wait_obj = 0;
    // Pending exceptions die with the task instance; the handler
    // definition itself persists across restarts.
    tcb.texptn_pending = 0;
    tcb.in_tex = false;
}

// ---- priority ----------------------------------------------------------------------

ER TKernel::tk_chg_pri(ID tskid, PRI tskpri) {
    ServiceSection svc(*this);
    TCB* t = nullptr;
    if (ER er = check_task_id(tskid, t); er != E_OK) {
        return er;
    }
    if (t->thread->state() == ThreadState::dormant) {
        return E_OBJ;
    }
    const PRI newpri = (tskpri == 0) ? t->ipri : tskpri;  // TPRI_INI == 0
    if (!valid_priority(newpri)) {
        return E_PAR;
    }
    // A ceiling-mutex holder/claimant must not exceed any ceiling it uses.
    for (ID mid : t->held_mutexes) {
        const Mutex* m = mtxs_.find(mid);
        if (m != nullptr && (m->atr & 0x3) == TA_CEILING && newpri < m->ceilpri) {
            return E_ILUSE;
        }
    }
    api_->SIM_ChangePriority(*t->thread, newpri);
    // recompute_priority repositions a waiting task in its (possibly
    // TA_TPRI) wait queue; it skips its own re-evaluation here because
    // SIM_ChangePriority already applied the new priority, so the
    // follow-up passes below are this function's responsibility.
    recompute_priority(*t);
    if (t->queue != nullptr) {
        if (t->wait_kind == WaitKind::mutex) {
            Mutex* m = mtxs_.find(t->wait_obj);
            if (m != nullptr) {
                apply_inheritance(*m);
                if (m->owner != nullptr) {
                    recompute_priority(*m->owner);
                }
            }
        } else {
            // The reorder can put a satisfiable waiter at the head.
            reevaluate_waiters(t->wait_kind, t->wait_obj);
        }
    }
    return E_OK;
}

ER TKernel::tk_rot_rdq(PRI tskpri) {
    ServiceSection svc(*this);
    PRI pri = tskpri;
    if (pri == 0) {  // TPRI_RUN: the running task's priority
        TCB* me = current_tcb();
        sim::TThread* run = api_->running_task();
        if (run != nullptr) {
            pri = run->priority();
        } else if (me != nullptr) {
            pri = me->thread->priority();
        } else {
            return E_PAR;
        }
    }
    if (!valid_priority(pri)) {
        return E_PAR;
    }
    api_->SIM_RotateReadyQueue(pri);
    // µ-ITRON: the *running* task at that priority goes to the back too.
    sim::TThread* run = api_->running_task();
    if (run != nullptr && run->priority() == pri) {
        api_->SIM_RequestPreempt(*run);
    }
    return E_OK;
}

ID TKernel::tk_get_tid() const {
    TCB* me = current_tcb();
    return me == nullptr ? 0 : me->id;
}

// ---- sleep / wakeup ---------------------------------------------------------------

ER TKernel::tk_slp_tsk(TMO tmout) {
    ServiceSection svc(*this);
    TCB* me = current_tcb();
    if (me == nullptr) {
        return E_CTX;
    }
    if (me->wakeup_count > 0) {
        --me->wakeup_count;
        return E_OK;
    }
    if (tmout == TMO_POL) {
        return E_TMOUT;
    }
    return block_current(*me, WaitKind::sleep, 0, nullptr, tmout, E_TMOUT, svc);
}

ER TKernel::tk_wup_tsk(ID tskid) {
    ServiceSection svc(*this);
    TCB* t = nullptr;
    if (ER er = check_task_id(tskid, t); er != E_OK) {
        return er;
    }
    if (t == current_tcb()) {
        return E_OBJ;
    }
    if (t->thread->state() == ThreadState::dormant) {
        return E_OBJ;
    }
    if (t->wait_kind == WaitKind::sleep) {
        release_wait(*t, E_OK);
        return E_OK;
    }
    if (t->wakeup_count >= wakeup_count_limit) {
        return E_QOVR;
    }
    ++t->wakeup_count;
    return E_OK;
}

INT TKernel::tk_can_wup(ID tskid) {
    ServiceSection svc(*this);
    TCB* t = nullptr;
    if (ER er = check_task_id(tskid, t); er != E_OK) {
        return er;
    }
    if (t->thread->state() == ThreadState::dormant) {
        return E_OBJ;
    }
    const INT n = static_cast<INT>(t->wakeup_count);
    t->wakeup_count = 0;
    return n;
}

ER TKernel::tk_rel_wai(ID tskid) {
    ServiceSection svc(*this);
    TCB* t = nullptr;
    if (ER er = check_task_id(tskid, t); er != E_OK) {
        return er;
    }
    if (t->wait_kind == WaitKind::none) {
        return E_OBJ;
    }
    const WaitKind kind = t->wait_kind;
    const ID obj = t->wait_obj;
    Mutex* mtx = (kind == WaitKind::mutex) ? mtxs_.find(obj) : nullptr;
    release_wait(*t, E_RLWAI);
    if (mtx != nullptr && mtx->owner != nullptr) {
        recompute_priority(*mtx->owner);
    }
    reevaluate_waiters(kind, obj);
    return E_OK;
}

ER TKernel::tk_dly_tsk(RELTIM dlytim) {
    ServiceSection svc(*this);
    TCB* me = current_tcb();
    if (me == nullptr) {
        return E_CTX;
    }
    if (dlytim == 0) {
        return E_OK;
    }
    // tk_dly_tsk returns E_OK when the full delay elapses.
    return block_current(*me, WaitKind::delay, 0, nullptr,
                         static_cast<TMO>(dlytim), E_OK, svc);
}

// ---- forced suspension ---------------------------------------------------------------

ER TKernel::tk_sus_tsk(ID tskid) {
    ServiceSection svc(*this);
    TCB* t = nullptr;
    if (ER er = check_task_id(tskid, t); er != E_OK) {
        return er;
    }
    if (t == current_tcb()) {
        return E_OBJ;  // T-Kernel forbids suspending the invoking task
    }
    const ThreadState st = t->thread->state();
    if (st == ThreadState::dormant) {
        return E_OBJ;
    }
    if (t->thread->suspend_count() >= wakeup_count_limit) {
        return E_QOVR;
    }
    api_->SIM_Suspend(*t->thread);
    return E_OK;
}

ER TKernel::tk_rsm_tsk(ID tskid) {
    ServiceSection svc(*this);
    TCB* t = nullptr;
    if (ER er = check_task_id(tskid, t); er != E_OK) {
        return er;
    }
    if (t->thread->suspend_count() == 0) {
        return E_OBJ;
    }
    api_->SIM_Resume(*t->thread);
    return E_OK;
}

ER TKernel::tk_frsm_tsk(ID tskid) {
    ServiceSection svc(*this);
    TCB* t = nullptr;
    if (ER er = check_task_id(tskid, t); er != E_OK) {
        return er;
    }
    if (t->thread->suspend_count() == 0) {
        return E_OBJ;
    }
    while (t->thread->suspend_count() > 0) {
        api_->SIM_Resume(*t->thread);
    }
    return E_OK;
}

// ---- reference -------------------------------------------------------------------------

ER TKernel::tk_ref_tsk(ID tskid, T_RTSK* pk) const {
    if (pk == nullptr) {
        return E_PAR;
    }
    TCB* t = nullptr;
    if (ER er = check_task_id(tskid, t); er != E_OK) {
        return er;
    }
    pk->exinf = t->exinf;
    pk->tskpri = t->thread->priority();
    pk->tskbpri = t->thread->base_priority();
    switch (t->thread->state()) {
        case ThreadState::running: pk->tskstat = TTS_RUN; break;
        case ThreadState::ready: pk->tskstat = TTS_RDY; break;
        case ThreadState::waiting: pk->tskstat = TTS_WAI; break;
        case ThreadState::suspended: pk->tskstat = TTS_SUS; break;
        case ThreadState::waiting_suspended: pk->tskstat = TTS_WAS; break;
        default: pk->tskstat = TTS_DMT; break;
    }
    pk->tskwait = wait_kind_to_ttw(t->wait_kind);
    pk->wid = t->wait_obj;
    pk->wupcnt = static_cast<INT>(t->wakeup_count);
    pk->suscnt = static_cast<INT>(t->thread->suspend_count());
    return E_OK;
}

}  // namespace rtk::tkernel
