// Multiplexed 4-digit seven-segment display -- the score display of the
// video-game case study (task T3). The driver writes a digit-select at
// offset 0 and a segment pattern at offset 1; the device decodes standard
// patterns back to characters for the widget/test side.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "bfm/device.hpp"

namespace rtk::bfm {

class SevenSegmentDisplay final : public Device {
public:
    static constexpr unsigned digits = 4;

    /// Standard segment encoding (bit0=a .. bit6=g) for '0'..'9'.
    static std::uint8_t encode_digit(unsigned value);
    /// Decode a segment pattern to '0'..'9', or '?' if non-standard,
    /// ' ' if blank.
    static char decode_segments(std::uint8_t seg);

    /// Display content as text, most significant digit first.
    std::string text() const;
    /// Displayed number (treats unknown/blank digits as 0).
    unsigned value() const;

    std::uint64_t refresh_count() const { return refresh_count_; }

    const std::string& name() const override { return name_; }
    std::uint8_t read(std::uint16_t offset) override;
    void write(std::uint16_t offset, std::uint8_t value) override;

private:
    std::string name_ = "ssd";
    std::array<std::uint8_t, digits> segments_{};
    std::uint8_t selected_ = 0;
    std::uint64_t refresh_count_ = 0;
};

}  // namespace rtk::bfm
