// Bfm8051 -- the assembled bus-functional model of the case study
// (paper §5.1, Fig 5): "the BFM consists of: Real Time Clock driving the
// kernel Central Module with default timing resolution = 1 ms, Memory
// controller, Interrupt controller, Serial I/O, and Multiplexed Parallel
// I/O interface to which several external peripheral devices are
// connected" -- here an HD44780-style LCD, a 4x4 keypad and a 4-digit
// seven-segment display.
//
// The class also provides the high-level driver calls the application
// tasks use (paper Fig 4); each consumes its cycle budget through the
// bus, so BFM access time/energy lands in the calling T-THREAD's token
// under ExecContext::bfm_access.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "bfm/bus.hpp"
#include "bfm/intc.hpp"
#include "bfm/keypad.hpp"
#include "bfm/lcd.hpp"
#include "bfm/pio.hpp"
#include "bfm/rtc.hpp"
#include "bfm/serial.hpp"
#include "bfm/ssd.hpp"
#include "bfm/timer.hpp"

namespace rtk::bfm {

class Bfm8051 {
public:
    struct Config {
        sysc::Time rtc_resolution = sysc::Time::ms(1);
        unsigned uart_baud = 9600;
        CycleBudgets budgets{};
    };

    // XDATA memory map of the case-study board.
    static constexpr std::uint16_t lcd_base = 0x8000;
    static constexpr std::uint16_t keypad_base = 0x9000;
    static constexpr std::uint16_t ssd_base = 0xA000;
    static constexpr std::uint16_t serial_base = 0xB000;
    static constexpr std::uint16_t intc_base = 0xC000;
    static constexpr std::uint16_t rtc_base = 0xD000;
    static constexpr std::uint16_t timer0_base = 0xE000;
    static constexpr std::uint16_t timer1_base = 0xE010;

    explicit Bfm8051(sim::SimApi& api);
    Bfm8051(sim::SimApi& api, Config cfg);

    Bus8051& bus() { return bus_; }
    RealTimeClock& rtc() { return rtc_; }
    InterruptController& intc() { return intc_; }
    SerialIO& serial() { return serial_; }
    MuxedParallelPort& pio() { return pio_; }
    Lcd16x2& lcd() { return lcd_; }
    Keypad4x4& keypad() { return keypad_; }
    SevenSegmentDisplay& ssd() { return ssd_; }
    Timer8051& timer0() { return timer0_; }
    Timer8051& timer1() { return timer1_; }

    // ---- high-level driver calls (cycle-budgeted BFM calls, Fig 4) ----
    /// Busy-poll then write an LCD command.
    void lcd_command(std::uint8_t cmd);
    /// Busy-poll then write one character at the cursor.
    void lcd_putc(char c);
    /// Position cursor and write a string (row 0/1, col 0..15).
    void lcd_print(unsigned row, unsigned col, const std::string& text);
    void lcd_clear();

    /// Full keypad matrix scan; returns first pressed key or -1.
    int keypad_scan();

    /// Show a decimal value on the 4-digit display.
    void ssd_show(unsigned value);

    /// Blocking-free UART send (returns false on overrun).
    bool serial_send(std::uint8_t byte);
    bool serial_poll_ready();
    std::uint8_t serial_receive();

    const Config& config() const { return cfg_; }

private:
    Config cfg_;
    Bus8051 bus_;
    RealTimeClock rtc_;
    InterruptController intc_;
    SerialIO serial_;
    MuxedParallelPort pio_;
    Lcd16x2 lcd_;
    Keypad4x4 keypad_;
    SevenSegmentDisplay ssd_;
    Timer8051 timer0_;
    Timer8051 timer1_;
};

}  // namespace rtk::bfm
