// Memory-mapped peripheral interface of the BFM ("Driver Model
// (handshake functions)", paper §5.1).
#pragma once

#include <cstdint>
#include <string>

namespace rtk::bfm {

class Device {
public:
    virtual ~Device() = default;
    virtual const std::string& name() const = 0;
    /// Register read at byte offset within the device window.
    virtual std::uint8_t read(std::uint16_t offset) = 0;
    /// Register write at byte offset within the device window.
    virtual void write(std::uint16_t offset, std::uint8_t value) = 0;
};

}  // namespace rtk::bfm
