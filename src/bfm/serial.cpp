#include "bfm/serial.hpp"

#include <cstdint>

#include "sysc/kernel.hpp"
#include "sysc/process.hpp"

namespace rtk::bfm {

SerialIO::SerialIO(sysc::Kernel& k, unsigned baud, InterruptController* intc)
    : frame_time_(sysc::Time::ps(static_cast<std::uint64_t>(1e12 * 10.0 / baud))),
      intc_(intc),
      tx_done_(k, "serial.tx_done"),
      rx_kick_(k, "serial.rx_kick") {
    tx_proc_ = &k.spawn("bfm.serial.tx", [this] {
        for (;;) {
            sysc::wait(tx_done_);
            tx_busy_ = false;
            ti_ = true;
            ++tx_count_;
            tx_log_.push_back(static_cast<char>(tx_shift_));
            if (intc_ != nullptr) {
                intc_->raise(InterruptController::line_serial);
            }
        }
    });
    rx_proc_ = &k.spawn("bfm.serial.rx", [this] {
        for (;;) {
            sysc::wait(rx_kick_);
            while (!rx_in_.empty()) {
                sysc::wait(frame_time_);
                const std::uint8_t byte = rx_in_.front();
                rx_in_.pop_front();
                if (ri_) {
                    ++rx_overruns_;  // SBUF still full: byte lost
                    continue;
                }
                rx_sbuf_ = byte;
                ri_ = true;
                ++rx_count_;
                if (intc_ != nullptr) {
                    intc_->raise(InterruptController::line_serial);
                }
            }
        }
    });
}

SerialIO::~SerialIO() {
    tx_proc_->kill();
    rx_proc_->kill();
}

bool SerialIO::tx(std::uint8_t byte) {
    if (tx_busy_) {
        ++tx_overruns_;
        return false;
    }
    tx_busy_ = true;
    ti_ = false;
    tx_shift_ = byte;
    tx_done_.notify(frame_time_);
    return true;
}

std::uint8_t SerialIO::rx() {
    ri_ = false;
    return rx_sbuf_;
}

void SerialIO::feed_rx(std::uint8_t byte) {
    rx_in_.push_back(byte);
    rx_kick_.notify();
}

std::uint8_t SerialIO::read(std::uint16_t offset) {
    switch (offset) {
        case 0: return rx();
        case 1:
            return static_cast<std::uint8_t>((ti_ ? 1 : 0) | (ri_ ? 2 : 0) |
                                             (tx_busy_ ? 4 : 0));
        default: return 0;
    }
}

void SerialIO::write(std::uint16_t offset, std::uint8_t value) {
    switch (offset) {
        case 0: tx(value); break;
        case 1: ti_ = false; break;  // status write clears TI
        default: break;
    }
}

}  // namespace rtk::bfm
