// Multiplexed parallel I/O interface (paper §5.1: "Multiplexed Parallel
// I/O interface to which several external peripheral devices are
// connected"). Models the 8051's P0 (muxed address/data) + P2 (select)
// scheme: the driver latches a device-select/register pair (ALE phase),
// then transfers data. Port values are exposed as traced signals so the
// waveform viewer of Fig 4 can probe them.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "bfm/device.hpp"
#include "sysc/signal.hpp"

namespace rtk::bfm {

class MuxedParallelPort {
public:
    MuxedParallelPort();

    /// Attach `dev` at select code `sel` (0..15).
    void attach(std::uint8_t sel, Device& dev);

    /// Latch select code + register offset (ALE phase of the mux cycle).
    void select(std::uint8_t sel, std::uint8_t reg);
    /// Data phase: write/read the latched device register.
    void data_write(std::uint8_t value);
    std::uint8_t data_read();

    // Port signals for waveform probing (Fig 4).
    sysc::Signal<std::uint8_t>& p0() { return p0_; }  ///< data bus
    sysc::Signal<std::uint8_t>& p2() { return p2_; }  ///< select/reg latch
    sysc::Signal<bool>& ale() { return ale_; }

    std::uint64_t transfer_count() const { return transfers_; }
    std::uint8_t selected() const { return sel_; }

private:
    std::map<std::uint8_t, Device*> devices_;
    std::uint8_t sel_ = 0;
    std::uint8_t reg_ = 0;
    std::uint64_t transfers_ = 0;
    sysc::Signal<std::uint8_t> p0_;
    sysc::Signal<std::uint8_t> p2_;
    sysc::Signal<bool> ale_;
};

}  // namespace rtk::bfm
