// Cycle budgets of the BFM driver-model calls (paper §5.1 / Fig 4):
// "Each BFM Call will be associated with a cycle budget that is based on
// BFM timing characteristics, and an estimation on the energy consumed
// during that BFM access."
//
// Budgets are in 8051 machine cycles (12 clocks; 1 us at 12 MHz). The
// energy per cycle comes from the SIM_API cost table's bfm_access context.
#pragma once

#include <cstdint>

namespace rtk::bfm {

struct CycleBudgets {
    std::uint64_t sfr_access = 1;     ///< special-function register
    std::uint64_t xdata_access = 2;   ///< MOVX through the external bus
    std::uint64_t port_access = 1;    ///< parallel port read/write
    std::uint64_t device_select = 1;  ///< mux select latch (ALE phase)
    std::uint64_t serial_access = 2;  ///< SBUF/SCON access
};

}  // namespace rtk::bfm
