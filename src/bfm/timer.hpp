// 8051-style timer/counter peripheral (Timer 0 / Timer 1).
//
// Models the classic modes used by firmware on the paper's target MCU:
//   mode 1: 16-bit timer -- counts machine cycles from TH:TL, overflows
//           after (65536 - reload) cycles, raises the timer IRQ line.
//   mode 2: 8-bit auto-reload -- overflow every (256 - TH) cycles; the
//           8051's standard baud/periodic-tick generator.
// TR (run) starts/stops counting; TF (overflow flag) latches and clears
// on read-acknowledge, as firmware drivers expect.
//
// The simulation is event-driven, not per-cycle: the overflow instant is
// scheduled from the current count and the machine-cycle period, so the
// timer costs nothing between overflows.
#pragma once

#include <cstdint>
#include <string>

#include "bfm/device.hpp"
#include "bfm/intc.hpp"
#include "sysc/event.hpp"
#include "sysc/time.hpp"

namespace rtk::sysc {
class Process;
}

namespace rtk::bfm {

class Timer8051 final : public Device {
public:
    enum class Mode : std::uint8_t {
        mode1_16bit = 1,
        mode2_autoreload = 2,
    };

    /// `index` selects the interrupt line (0 -> Timer0, 1 -> Timer1).
    /// Context-explicit form: counting process and events live on `kernel`.
    Timer8051(sysc::Kernel& kernel, unsigned index,
              InterruptController* intc = nullptr,
              sysc::Time machine_cycle = sysc::Time::us(1));
    ~Timer8051() override;

    // ---- driver API ----
    void set_mode(Mode m);
    Mode mode() const { return mode_; }
    /// Load TH:TL (mode 1) or the auto-reload value TH (mode 2).
    void load(std::uint16_t value);
    void start();
    void stop();
    bool running() const { return running_; }
    /// Overflow flag; cleared by acknowledge().
    bool tf() const { return tf_; }
    void acknowledge() { tf_ = false; }

    /// Period between overflows for the current configuration.
    sysc::Time overflow_period() const;
    std::uint64_t overflow_count() const { return overflows_; }
    sysc::Event& overflow_event() { return overflow_ev_; }

    /// Configure a periodic rate directly (helper): picks mode 2 when the
    /// period fits in 256 cycles, else mode 1 with the right reload.
    void configure_period(sysc::Time period);

    // Device window: 0=TL, 1=TH, 2=control (bit0 TR, bit1 TF ack-on-write,
    // bit2 mode select: 0 -> mode1, 1 -> mode2), 3=status (bit0 TF).
    const std::string& name() const override { return name_; }
    std::uint8_t read(std::uint16_t offset) override;
    void write(std::uint16_t offset, std::uint8_t value) override;

private:
    void run_loop();

    std::string name_;
    unsigned irq_line_;
    InterruptController* intc_;
    sysc::Time machine_cycle_;
    Mode mode_ = Mode::mode1_16bit;
    std::uint16_t reload_ = 0;
    bool running_ = false;
    bool tf_ = false;
    std::uint64_t overflows_ = 0;
    sysc::Event overflow_ev_;
    sysc::Event control_ev_;  ///< wakes the counting process on start/stop
    sysc::Process* proc_ = nullptr;
};

}  // namespace rtk::bfm
