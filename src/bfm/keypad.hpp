// 4x4 matrix keypad peripheral -- the input device of the video-game case
// study (task T2). The driver strobes a row mask into offset 0 and reads
// the column mask back from offset 1; a full scan identifies the pressed
// key. Key events injected by the testbench raise /INT0 through the
// interrupt controller.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "bfm/device.hpp"
#include "bfm/intc.hpp"

namespace rtk::bfm {

class Keypad4x4 final : public Device {
public:
    explicit Keypad4x4(InterruptController* intc = nullptr);

    /// Keys are numbered 0..15, row-major: key = row*4 + col.
    void press(unsigned key);
    void release(unsigned key);
    bool is_pressed(unsigned key) const;
    /// Any key currently down?
    bool any_pressed() const { return pressed_mask_ != 0; }

    /// Full scan as a driver would do it (testing convenience; consumes
    /// no cycles -- drivers go through the bus). Returns -1 if none.
    int scan_first_pressed() const;

    std::uint64_t press_count() const { return press_count_; }

    // Device window: 0 = row strobe (w), 1 = column readback (r),
    // 2 = raw pressed count (r, debug).
    const std::string& name() const override { return name_; }
    std::uint8_t read(std::uint16_t offset) override;
    void write(std::uint16_t offset, std::uint8_t value) override;

private:
    std::string name_ = "keypad";
    InterruptController* intc_;
    std::uint16_t pressed_mask_ = 0;  ///< bit = key index
    std::uint8_t row_strobe_ = 0;
    std::uint64_t press_count_ = 0;
};

}  // namespace rtk::bfm
