#include "bfm/bfm8051.hpp"

#include <cstdint>

namespace rtk::bfm {

namespace {
// Mux select codes on the parallel interface.
constexpr std::uint8_t sel_lcd = 1;
constexpr std::uint8_t sel_keypad = 2;
constexpr std::uint8_t sel_ssd = 3;
}  // namespace

Bfm8051::Bfm8051(sim::SimApi& api) : Bfm8051(api, Config{}) {}

Bfm8051::Bfm8051(sim::SimApi& api, Config cfg)
    : cfg_(cfg),
      bus_(api, cfg.budgets),
      rtc_(api.kernel(), cfg.rtc_resolution),
      serial_(api.kernel(), cfg.uart_baud, &intc_),
      lcd_(api.kernel()),
      keypad_(&intc_),
      timer0_(api.kernel(), 0, &intc_),
      timer1_(api.kernel(), 1, &intc_) {
    // Memory controller view: devices in XDATA space.
    bus_.map(lcd_base, 0x10, lcd_);
    bus_.map(keypad_base, 0x10, keypad_);
    bus_.map(ssd_base, 0x10, ssd_);
    bus_.map(serial_base, 0x10, serial_);
    bus_.map(intc_base, 0x10, intc_);
    bus_.map(rtc_base, 0x10, rtc_);
    bus_.map(timer0_base, 0x10, timer0_);
    bus_.map(timer1_base, 0x10, timer1_);
    // Peripherals also hang off the multiplexed parallel interface so the
    // port activity is probeable in the waveform viewer (Fig 4).
    pio_.attach(sel_lcd, lcd_);
    pio_.attach(sel_keypad, keypad_);
    pio_.attach(sel_ssd, ssd_);
    // Default interrupt setup: everything enabled, serial high priority.
    intc_.write_ie(0x80 | 0x1f);
    intc_.write_ip(1u << InterruptController::line_serial);
}

void Bfm8051::lcd_command(std::uint8_t cmd) {
    while ((bus_.read_xdata(lcd_base + 0) & 0x80) != 0) {
        // busy-poll: each read costs a bus access, exactly as a real
        // driver would spin on the busy flag
    }
    bus_.write_xdata(lcd_base + 0, cmd);
}

void Bfm8051::lcd_putc(char c) {
    while ((bus_.read_xdata(lcd_base + 0) & 0x80) != 0) {
    }
    bus_.write_xdata(lcd_base + 1, static_cast<std::uint8_t>(c));
}

void Bfm8051::lcd_print(unsigned row, unsigned col, const std::string& text) {
    const std::uint8_t base = row == 0 ? 0x00 : 0x40;
    lcd_command(static_cast<std::uint8_t>(Lcd16x2::cmd_set_ddram |
                                          (base + (col & 0x0f))));
    for (char c : text) {
        lcd_putc(c);
    }
}

void Bfm8051::lcd_clear() {
    lcd_command(Lcd16x2::cmd_clear);
}

int Bfm8051::keypad_scan() {
    for (unsigned row = 0; row < 4; ++row) {
        bus_.write_xdata(keypad_base + 0, static_cast<std::uint8_t>(1u << row));
        const std::uint8_t cols = bus_.read_xdata(keypad_base + 1);
        for (unsigned col = 0; col < 4; ++col) {
            if ((cols >> col) & 1u) {
                return static_cast<int>(row * 4 + col);
            }
        }
    }
    return -1;
}

void Bfm8051::ssd_show(unsigned value) {
    for (unsigned d = 0; d < SevenSegmentDisplay::digits; ++d) {
        bus_.write_xdata(ssd_base + 0, static_cast<std::uint8_t>(d));
        bus_.write_xdata(ssd_base + 1,
                         SevenSegmentDisplay::encode_digit(value % 10));
        value /= 10;
    }
}

bool Bfm8051::serial_send(std::uint8_t byte) {
    if ((bus_.read_xdata(serial_base + 1) & 0x04) != 0) {
        return false;  // transmitter busy
    }
    bus_.write_xdata(serial_base + 0, byte);
    return true;
}

bool Bfm8051::serial_poll_ready() {
    return (bus_.read_xdata(serial_base + 1) & 0x02) != 0;
}

std::uint8_t Bfm8051::serial_receive() {
    return bus_.read_xdata(serial_base + 0);
}

}  // namespace rtk::bfm
