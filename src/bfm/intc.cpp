#include "bfm/intc.hpp"

#include <cstdint>

#include "sysc/report.hpp"

namespace rtk::bfm {

void InterruptController::raise(unsigned line) {
    if (line >= num_lines) {
        sysc::report(sysc::Severity::fatal, "intc", "invalid interrupt line");
    }
    ++raised_[line];
    if (!line_enabled(line) || !sink_) {
        pending_ |= static_cast<std::uint8_t>(1u << line);
        ++masked_latches_;
        return;
    }
    ++delivered_[line];
    sink_(line, high_priority(line));
}

void InterruptController::write_ie(std::uint8_t v) {
    ie_ = v;
    deliver_pending();
}

void InterruptController::deliver_pending() {
    if (!sink_) {
        return;
    }
    for (unsigned line = 0; line < num_lines; ++line) {
        const std::uint8_t bit = static_cast<std::uint8_t>(1u << line);
        if ((pending_ & bit) != 0 && line_enabled(line)) {
            pending_ = static_cast<std::uint8_t>(pending_ & ~bit);
            ++delivered_[line];
            sink_(line, high_priority(line));
        }
    }
}

std::uint8_t InterruptController::read(std::uint16_t offset) {
    switch (offset) {
        case 0: return ie_;
        case 1: return ip_;
        case 2: return pending_;
        default: return 0;
    }
}

void InterruptController::write(std::uint16_t offset, std::uint8_t value) {
    switch (offset) {
        case 0: write_ie(value); break;
        case 1: write_ip(value); break;
        default: break;
    }
}

}  // namespace rtk::bfm
