#include "bfm/lcd.hpp"

#include <algorithm>
#include <cstdint>

#include "sysc/kernel.hpp"

namespace rtk::bfm {

namespace {
constexpr auto short_exec = sysc::Time::us(37);
constexpr auto long_exec = sysc::Time::us(1520);

unsigned ddram_to_index(std::uint8_t addr) {
    if (addr >= 0x40) {
        return Lcd16x2::columns + std::min<unsigned>(addr - 0x40, Lcd16x2::columns - 1);
    }
    return std::min<unsigned>(addr, Lcd16x2::columns - 1);
}
}  // namespace

Lcd16x2::Lcd16x2(sysc::Kernel& kernel) : kernel_(&kernel) {
    ddram_.fill(' ');
}

bool Lcd16x2::busy() const {
    return kernel_->now() < busy_until_;
}

void Lcd16x2::make_busy(sysc::Time dur) {
    busy_until_ = kernel_->now() + dur;
}

void Lcd16x2::execute(std::uint8_t cmd) {
    if (cmd == cmd_clear) {
        ddram_.fill(' ');
        addr_ = 0;
        ++frame_count_;
        make_busy(long_exec);
    } else if (cmd == cmd_home) {
        addr_ = 0;
        make_busy(long_exec);
    } else if (cmd == cmd_display_on) {
        display_on_ = true;
        make_busy(short_exec);
    } else if (cmd == cmd_display_off) {
        display_on_ = false;
        make_busy(short_exec);
    } else if ((cmd & cmd_set_ddram) != 0) {
        addr_ = cmd & 0x7f;
        make_busy(short_exec);
    } else {
        make_busy(short_exec);  // unimplemented commands still take time
    }
}

std::uint8_t Lcd16x2::read(std::uint16_t offset) {
    if (offset == 0) {
        // Busy flag in bit 7, current address in bits 0-6.
        return static_cast<std::uint8_t>((busy() ? 0x80 : 0x00) | (addr_ & 0x7f));
    }
    return static_cast<std::uint8_t>(ddram_[ddram_to_index(addr_)]);
}

void Lcd16x2::write(std::uint16_t offset, std::uint8_t value) {
    if (busy()) {
        ++busy_drops_;
        return;
    }
    if (offset == 0) {
        execute(value);
        return;
    }
    // data write at the cursor, auto-increment (entry mode I/D=1)
    ddram_[ddram_to_index(addr_)] = static_cast<char>(value);
    ++data_writes_;
    if (addr_ == columns - 1) {
        addr_ = 0x40;  // wrap to row 1
    } else {
        ++addr_;
    }
    make_busy(short_exec);
}

std::string Lcd16x2::row_text(unsigned row) const {
    if (row >= rows) {
        return {};
    }
    return std::string(ddram_.begin() + row * columns,
                       ddram_.begin() + (row + 1) * columns);
}

std::string Lcd16x2::text() const {
    return row_text(0) + "\n" + row_text(1);
}

}  // namespace rtk::bfm
