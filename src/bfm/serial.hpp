// Serial I/O of the BFM: an 8051 UART in mode 1 (8N1, 10 bits per frame).
// Transmission occupies the line for one frame time, then sets TI and
// raises the serial interrupt; received bytes fed by the testbench arrive
// one frame time later, set RI and raise the interrupt. A single SBUF
// models the 8051's one-deep buffers, with overrun counting.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "bfm/device.hpp"
#include "bfm/intc.hpp"
#include "sysc/event.hpp"
#include "sysc/time.hpp"

namespace rtk::sysc {
class Process;
}

namespace rtk::bfm {

class SerialIO final : public Device {
public:
    /// 10 bits per frame at `baud` (mode 1).
    /// Context-explicit form: TX/RX processes and events live on `kernel`.
    explicit SerialIO(sysc::Kernel& kernel, unsigned baud = 9600,
                      InterruptController* intc = nullptr);
    ~SerialIO() override;

    // ---- driver API ----
    bool tx_ready() const { return !tx_busy_; }
    /// Returns false (and counts an overrun) when the transmitter is busy.
    bool tx(std::uint8_t byte);
    bool rx_ready() const { return ri_; }
    /// Read SBUF; clears RI.
    std::uint8_t rx();

    bool ti() const { return ti_; }
    void clear_ti() { ti_ = false; }

    // ---- testbench side ----
    void feed_rx(std::uint8_t byte);  ///< byte arrives after one frame time
    const std::string& transmitted() const { return tx_log_; }

    sysc::Time frame_time() const { return frame_time_; }
    std::uint64_t tx_count() const { return tx_count_; }
    std::uint64_t rx_count() const { return rx_count_; }
    std::uint64_t tx_overruns() const { return tx_overruns_; }
    std::uint64_t rx_overruns() const { return rx_overruns_; }

    // Device window: 0=SBUF (r/w), 1=status (bit0 TI, bit1 RI, bit2 tx_busy).
    const std::string& name() const override { return name_; }
    std::uint8_t read(std::uint16_t offset) override;
    void write(std::uint16_t offset, std::uint8_t value) override;

private:
    std::string name_ = "serial";
    sysc::Time frame_time_;
    InterruptController* intc_;

    bool tx_busy_ = false;
    bool ti_ = false;
    bool ri_ = false;
    std::uint8_t tx_shift_ = 0;
    std::uint8_t rx_sbuf_ = 0;
    std::deque<std::uint8_t> rx_in_;
    sysc::Event tx_done_;
    sysc::Event rx_kick_;
    std::string tx_log_;
    std::uint64_t tx_count_ = 0;
    std::uint64_t rx_count_ = 0;
    std::uint64_t tx_overruns_ = 0;
    std::uint64_t rx_overruns_ = 0;
    sysc::Process* tx_proc_ = nullptr;
    sysc::Process* rx_proc_ = nullptr;
};

}  // namespace rtk::bfm
