// Character LCD peripheral (HD44780-style 16x2) attached to the
// multiplexed parallel interface -- the display of the paper's video-game
// case study (task T1 renders the play field here).
//
// Register window: offset 0 = command, offset 1 = data. Command execution
// keeps the controller busy (clear/home 1.52 ms, others 37 us); writes
// issued while busy are dropped and counted, so correctly written drivers
// must poll the busy flag (bit 7 of a command-register read).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "bfm/device.hpp"
#include "sysc/time.hpp"

namespace rtk::sysc {
class Kernel;
}

namespace rtk::bfm {

class Lcd16x2 final : public Device {
public:
    static constexpr unsigned columns = 16;
    static constexpr unsigned rows = 2;

    /// Context-explicit form: busy-flag timing reads `kernel`'s clock.
    explicit Lcd16x2(sysc::Kernel& kernel);

    // ---- command set (subset of HD44780) ----
    static constexpr std::uint8_t cmd_clear = 0x01;
    static constexpr std::uint8_t cmd_home = 0x02;
    static constexpr std::uint8_t cmd_display_on = 0x0C;
    static constexpr std::uint8_t cmd_display_off = 0x08;
    /// 0x80 | ddram address (row0: 0x00-0x0F, row1: 0x40-0x4F)
    static constexpr std::uint8_t cmd_set_ddram = 0x80;

    bool busy() const;
    bool display_on() const { return display_on_; }

    /// Rendered text content, rows joined with '\n'.
    std::string text() const;
    std::string row_text(unsigned row) const;

    std::uint64_t writes_while_busy() const { return busy_drops_; }
    std::uint64_t data_writes() const { return data_writes_; }
    std::uint64_t frame_count() const { return frame_count_; }  ///< clear count

    const std::string& name() const override { return name_; }
    std::uint8_t read(std::uint16_t offset) override;
    void write(std::uint16_t offset, std::uint8_t value) override;

private:
    void execute(std::uint8_t cmd);
    void make_busy(sysc::Time dur);

    sysc::Kernel* kernel_;
    std::string name_ = "lcd";
    std::array<char, columns * rows> ddram_{};
    std::uint8_t addr_ = 0;  ///< ddram cursor
    bool display_on_ = true;
    sysc::Time busy_until_{};
    std::uint64_t busy_drops_ = 0;
    std::uint64_t data_writes_ = 0;
    std::uint64_t frame_count_ = 0;
};

}  // namespace rtk::bfm
