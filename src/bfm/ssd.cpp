#include "bfm/ssd.hpp"

#include <cstdint>

namespace rtk::bfm {

namespace {
constexpr std::array<std::uint8_t, 10> patterns = {
    0x3f, 0x06, 0x5b, 0x4f, 0x66, 0x6d, 0x7d, 0x07, 0x7f, 0x6f,
};
}

std::uint8_t SevenSegmentDisplay::encode_digit(unsigned value) {
    return value < 10 ? patterns[value] : 0;
}

char SevenSegmentDisplay::decode_segments(std::uint8_t seg) {
    if (seg == 0) {
        return ' ';
    }
    for (unsigned d = 0; d < 10; ++d) {
        if (patterns[d] == (seg & 0x7f)) {
            return static_cast<char>('0' + d);
        }
    }
    return '?';
}

std::string SevenSegmentDisplay::text() const {
    std::string out;
    for (unsigned d = digits; d-- > 0;) {
        out.push_back(decode_segments(segments_[d]));
    }
    return out;
}

unsigned SevenSegmentDisplay::value() const {
    unsigned v = 0;
    for (unsigned d = digits; d-- > 0;) {
        const char c = decode_segments(segments_[d]);
        v = v * 10 + (c >= '0' && c <= '9' ? static_cast<unsigned>(c - '0') : 0);
    }
    return v;
}

std::uint8_t SevenSegmentDisplay::read(std::uint16_t offset) {
    if (offset == 0) {
        return selected_;
    }
    if (offset == 1 && selected_ < digits) {
        return segments_[selected_];
    }
    return 0;
}

void SevenSegmentDisplay::write(std::uint16_t offset, std::uint8_t value) {
    if (offset == 0) {
        selected_ = value & 0x03;
        return;
    }
    if (offset == 1 && selected_ < digits) {
        segments_[selected_] = value;
        ++refresh_count_;
    }
}

}  // namespace rtk::bfm
