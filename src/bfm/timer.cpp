#include "bfm/timer.hpp"

#include <cstdint>

#include "sysc/kernel.hpp"
#include "sysc/process.hpp"
#include "sysc/report.hpp"

namespace rtk::bfm {

Timer8051::Timer8051(sysc::Kernel& kernel, unsigned index, InterruptController* intc,
                     sysc::Time machine_cycle)
    : name_("timer" + std::to_string(index)),
      irq_line_(index == 0 ? InterruptController::line_timer0
                           : InterruptController::line_timer1),
      intc_(intc),
      machine_cycle_(machine_cycle),
      overflow_ev_(kernel, name_ + ".overflow"),
      control_ev_(kernel, name_ + ".control") {
    if (index > 1) {
        sysc::report(sysc::Severity::fatal, "timer", "8051 has timers 0 and 1 only");
    }
    proc_ = &kernel.spawn("bfm." + name_, [this] { run_loop(); });
}

Timer8051::~Timer8051() {
    proc_->kill();
}

void Timer8051::run_loop() {
    for (;;) {
        while (!running_) {
            sysc::wait(control_ev_);
        }
        const sysc::Time period = overflow_period();
        // A start/stop/reconfigure during the countdown restarts the wait.
        if (sysc::wait(period, control_ev_)) {
            continue;  // control change: re-evaluate
        }
        if (!running_) {
            continue;
        }
        tf_ = true;
        ++overflows_;
        overflow_ev_.notify();
        if (intc_ != nullptr) {
            intc_->raise(irq_line_);
        }
    }
}

sysc::Time Timer8051::overflow_period() const {
    if (mode_ == Mode::mode2_autoreload) {
        const std::uint64_t cycles = 256 - (reload_ & 0xff);
        return machine_cycle_ * (cycles == 0 ? 256 : cycles);
    }
    const std::uint64_t cycles = 65536 - reload_;
    return machine_cycle_ * (cycles == 0 ? 65536 : cycles);
}

void Timer8051::set_mode(Mode m) {
    mode_ = m;
    control_ev_.notify();
}

void Timer8051::load(std::uint16_t value) {
    reload_ = value;
    control_ev_.notify();
}

void Timer8051::start() {
    if (!running_) {
        running_ = true;
        control_ev_.notify();
    }
}

void Timer8051::stop() {
    if (running_) {
        running_ = false;
        control_ev_.notify();
    }
}

void Timer8051::configure_period(sysc::Time period) {
    const std::uint64_t cycles = period / machine_cycle_;
    if (cycles == 0) {
        sysc::report(sysc::Severity::fatal, "timer",
                     "period below one machine cycle");
    }
    if (cycles <= 256) {
        mode_ = Mode::mode2_autoreload;
        reload_ = static_cast<std::uint16_t>(256 - cycles);
    } else if (cycles <= 65536) {
        mode_ = Mode::mode1_16bit;
        reload_ = static_cast<std::uint16_t>(65536 - cycles);
    } else {
        sysc::report(sysc::Severity::fatal, "timer",
                     "period exceeds the 16-bit timer range");
    }
    control_ev_.notify();
}

std::uint8_t Timer8051::read(std::uint16_t offset) {
    switch (offset) {
        case 0: return static_cast<std::uint8_t>(reload_ & 0xff);
        case 1: return static_cast<std::uint8_t>(reload_ >> 8);
        case 2:
            return static_cast<std::uint8_t>(
                (running_ ? 1 : 0) |
                (mode_ == Mode::mode2_autoreload ? 4 : 0));
        case 3: return tf_ ? 1 : 0;
        default: return 0;
    }
}

void Timer8051::write(std::uint16_t offset, std::uint8_t value) {
    switch (offset) {
        case 0:
            reload_ = static_cast<std::uint16_t>((reload_ & 0xff00) | value);
            control_ev_.notify();
            break;
        case 1:
            reload_ = static_cast<std::uint16_t>((reload_ & 0x00ff) | (value << 8));
            control_ev_.notify();
            break;
        case 2:
            if ((value & 0x02) != 0) {
                tf_ = false;
            }
            set_mode((value & 0x04) != 0 ? Mode::mode2_autoreload : Mode::mode1_16bit);
            if ((value & 0x01) != 0) {
                start();
            } else {
                stop();
            }
            break;
        default: break;
    }
}

}  // namespace rtk::bfm
