#include "bfm/keypad.hpp"

#include <cstdint>

#include "sysc/report.hpp"

namespace rtk::bfm {

Keypad4x4::Keypad4x4(InterruptController* intc) : intc_(intc) {}

void Keypad4x4::press(unsigned key) {
    if (key >= 16) {
        sysc::report(sysc::Severity::fatal, "keypad", "invalid key index");
    }
    const std::uint16_t bit = static_cast<std::uint16_t>(1u << key);
    if ((pressed_mask_ & bit) != 0) {
        return;  // already down
    }
    pressed_mask_ |= bit;
    ++press_count_;
    if (intc_ != nullptr) {
        intc_->raise(InterruptController::line_ext0);
    }
}

void Keypad4x4::release(unsigned key) {
    if (key >= 16) {
        sysc::report(sysc::Severity::fatal, "keypad", "invalid key index");
    }
    pressed_mask_ &= static_cast<std::uint16_t>(~(1u << key));
}

bool Keypad4x4::is_pressed(unsigned key) const {
    return key < 16 && ((pressed_mask_ >> key) & 1u) != 0;
}

int Keypad4x4::scan_first_pressed() const {
    for (unsigned k = 0; k < 16; ++k) {
        if (is_pressed(k)) {
            return static_cast<int>(k);
        }
    }
    return -1;
}

std::uint8_t Keypad4x4::read(std::uint16_t offset) {
    if (offset == 1) {
        // Column mask for the strobed rows.
        std::uint8_t cols = 0;
        for (unsigned row = 0; row < 4; ++row) {
            if (((row_strobe_ >> row) & 1u) == 0) {
                continue;
            }
            for (unsigned col = 0; col < 4; ++col) {
                if (is_pressed(row * 4 + col)) {
                    cols |= static_cast<std::uint8_t>(1u << col);
                }
            }
        }
        return cols;
    }
    if (offset == 2) {
        std::uint8_t n = 0;
        for (unsigned k = 0; k < 16; ++k) {
            n += is_pressed(k) ? 1 : 0;
        }
        return n;
    }
    return row_strobe_;
}

void Keypad4x4::write(std::uint16_t offset, std::uint8_t value) {
    if (offset == 0) {
        row_strobe_ = value & 0x0f;
    }
}

}  // namespace rtk::bfm
