// Umbrella header for rtk::bfm -- the i8051 bus-functional model.
#pragma once

#include "bfm/bfm8051.hpp"
#include "bfm/bus.hpp"
#include "bfm/cost.hpp"
#include "bfm/device.hpp"
#include "bfm/intc.hpp"
#include "bfm/keypad.hpp"
#include "bfm/lcd.hpp"
#include "bfm/pio.hpp"
#include "bfm/rtc.hpp"
#include "bfm/serial.hpp"
#include "bfm/ssd.hpp"
#include "bfm/timer.hpp"
