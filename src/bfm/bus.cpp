#include "bfm/bus.hpp"

#include <cstdint>

#include "sysc/report.hpp"

namespace rtk::bfm {

Bus8051::Bus8051(sim::SimApi& api, CycleBudgets budgets)
    : api_(api), budgets_(budgets), ram_(xdata_size, 0) {}

void Bus8051::map(std::uint16_t base, std::uint16_t size, Device& dev) {
    for (const auto& m : mappings_) {
        const std::uint32_t end_new = static_cast<std::uint32_t>(base) + size;
        const std::uint32_t end_old = static_cast<std::uint32_t>(m.base) + m.size;
        if (base < end_old && m.base < end_new) {
            sysc::report(sysc::Severity::fatal, "bfm",
                         "device mapping overlap: '" + dev.name() + "' and '" +
                             m.dev->name() + "'");
        }
    }
    mappings_.push_back({base, size, &dev});
}

Bus8051::Mapping* Bus8051::find_mapping(std::uint16_t addr) {
    for (auto& m : mappings_) {
        if (addr >= m.base && addr < static_cast<std::uint32_t>(m.base) + m.size) {
            return &m;
        }
    }
    return nullptr;
}

void Bus8051::consume(std::uint64_t cycles) {
    cycles_consumed_ += cycles;
    // Only a registered T-THREAD consumes simulated time; device-internal
    // or testbench accesses are functionally instantaneous.
    if (api_.self_or_null() != nullptr) {
        api_.SIM_WaitUnits(cycles, sim::ExecContext::bfm_access);
    }
}

void Bus8051::notify(std::uint16_t addr, bool write, bool device) {
    ++access_count_;
    const AccessEvent ev{addr, write, device};
    for (const auto& fn : listeners_) {
        fn(ev);
    }
}

std::uint8_t Bus8051::read_xdata(std::uint16_t addr) {
    consume(budgets_.xdata_access);
    if (Mapping* m = find_mapping(addr)) {
        notify(addr, false, true);
        return m->dev->read(static_cast<std::uint16_t>(addr - m->base));
    }
    notify(addr, false, false);
    return ram_[addr];
}

void Bus8051::write_xdata(std::uint16_t addr, std::uint8_t value) {
    consume(budgets_.xdata_access);
    if (Mapping* m = find_mapping(addr)) {
        notify(addr, true, true);
        m->dev->write(static_cast<std::uint16_t>(addr - m->base), value);
        return;
    }
    notify(addr, true, false);
    ram_[addr] = value;
}

std::uint16_t Bus8051::read_xdata16(std::uint16_t addr) {
    const std::uint8_t lo = read_xdata(addr);
    const std::uint8_t hi = read_xdata(static_cast<std::uint16_t>(addr + 1));
    return static_cast<std::uint16_t>(lo | (hi << 8));
}

void Bus8051::write_xdata16(std::uint16_t addr, std::uint16_t value) {
    write_xdata(addr, static_cast<std::uint8_t>(value & 0xff));
    write_xdata(static_cast<std::uint16_t>(addr + 1),
                static_cast<std::uint8_t>(value >> 8));
}

}  // namespace rtk::bfm
