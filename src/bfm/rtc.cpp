#include "bfm/rtc.hpp"

#include <cstdint>

#include "sysc/kernel.hpp"
#include "sysc/process.hpp"

namespace rtk::bfm {

RealTimeClock::RealTimeClock(sysc::Kernel& kernel, sysc::Time resolution)
    : resolution_(resolution), tick_(kernel, "rtc.tick") {
    proc_ = &kernel.spawn("bfm.rtc", [this] {
        for (;;) {
            sysc::wait(resolution_);
            ++count_;
            tick_.notify();
        }
    });
}

RealTimeClock::~RealTimeClock() {
    proc_->kill();
}

std::uint8_t RealTimeClock::read(std::uint16_t offset) {
    if (offset < 4) {
        return static_cast<std::uint8_t>((count_ >> (8 * offset)) & 0xff);
    }
    return 0;
}

void RealTimeClock::write(std::uint16_t offset, std::uint8_t) {
    if (offset == 0) {
        count_ = 0;
    }
}

}  // namespace rtk::bfm
