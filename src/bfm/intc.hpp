// 8051-style interrupt controller: five sources (INT0, Timer0, INT1,
// Timer1, Serial), IE register with global enable (EA), IP register with
// two priority levels, and pending-latch semantics -- an IRQ raised while
// masked is latched and delivered on unmask.
//
// Delivery goes to an injectable sink (the kernel's Interrupt Dispatch
// module); the kernel-side vector priority encodes the IP level so
// high-priority IRQs nest into low-priority handlers.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "bfm/device.hpp"

namespace rtk::bfm {

class InterruptController final : public Device {
public:
    static constexpr unsigned num_lines = 5;
    // Canonical 8051 line assignment.
    static constexpr unsigned line_ext0 = 0;    ///< /INT0 (keypad in the case study)
    static constexpr unsigned line_timer0 = 1;
    static constexpr unsigned line_ext1 = 2;
    static constexpr unsigned line_timer1 = 3;
    static constexpr unsigned line_serial = 4;

    using Sink = std::function<void(unsigned line, bool high_priority)>;

    InterruptController() = default;

    /// Install the delivery sink (kernel Interrupt Dispatch wiring).
    void set_sink(Sink sink) { sink_ = std::move(sink); }

    /// Raise interrupt line; masked lines latch as pending.
    void raise(unsigned line);

    // ---- IE register (bit7 = EA global enable, bit N = line N) ----
    void write_ie(std::uint8_t v);
    std::uint8_t read_ie() const { return ie_; }
    // ---- IP register (bit N set = line N is high priority) ----
    void write_ip(std::uint8_t v) { ip_ = v; }
    std::uint8_t read_ip() const { return ip_; }

    bool pending(unsigned line) const { return (pending_ >> line) & 1u; }
    bool line_enabled(unsigned line) const {
        return (ie_ & 0x80u) != 0 && ((ie_ >> line) & 1u) != 0;
    }
    bool high_priority(unsigned line) const { return ((ip_ >> line) & 1u) != 0; }

    std::uint64_t raised(unsigned line) const { return raised_.at(line); }
    std::uint64_t delivered(unsigned line) const { return delivered_.at(line); }
    std::uint64_t masked_latches() const { return masked_latches_; }

    // Device window: 0=IE, 1=IP, 2=pending (read-only).
    const std::string& name() const override { return name_; }
    std::uint8_t read(std::uint16_t offset) override;
    void write(std::uint16_t offset, std::uint8_t value) override;

private:
    void deliver_pending();

    std::string name_ = "intc";
    Sink sink_;
    std::uint8_t ie_ = 0;
    std::uint8_t ip_ = 0;
    std::uint8_t pending_ = 0;
    std::array<std::uint64_t, num_lines> raised_{};
    std::array<std::uint64_t, num_lines> delivered_{};
    std::uint64_t masked_latches_ = 0;
};

}  // namespace rtk::bfm
