#include "bfm/pio.hpp"

#include <cstdint>

#include "sysc/report.hpp"

namespace rtk::bfm {

MuxedParallelPort::MuxedParallelPort()
    : p0_("bfm.p0"), p2_("bfm.p2"), ale_("bfm.ale") {}

void MuxedParallelPort::attach(std::uint8_t sel, Device& dev) {
    if (!devices_.emplace(sel, &dev).second) {
        sysc::report(sysc::Severity::fatal, "pio",
                     "select code already occupied: " + std::to_string(sel));
    }
}

void MuxedParallelPort::select(std::uint8_t sel, std::uint8_t reg) {
    sel_ = sel;
    reg_ = reg;
    p2_.write(static_cast<std::uint8_t>((sel << 4) | (reg & 0x0f)));
    ale_.write(true);
    ale_.write(false);  // pulse (visible as a delta-wide blip in the VCD)
}

void MuxedParallelPort::data_write(std::uint8_t value) {
    p0_.write(value);
    ++transfers_;
    auto it = devices_.find(sel_);
    if (it != devices_.end()) {
        it->second->write(reg_, value);
    }
}

std::uint8_t MuxedParallelPort::data_read() {
    ++transfers_;
    auto it = devices_.find(sel_);
    const std::uint8_t v = it != devices_.end() ? it->second->read(reg_) : 0xff;
    p0_.write(v);
    return v;
}

}  // namespace rtk::bfm
