// Real-time clock of the BFM: "Real Time Clock driving the kernel Central
// Module with default timing resolution = 1 ms" (paper §5.1).
//
// Exposes the tick as an event (for TKernel::attach_tick_source) and a
// small register window (tick counter) as a memory-mapped device.
#pragma once

#include <cstdint>

#include "bfm/device.hpp"
#include "sysc/event.hpp"
#include "sysc/time.hpp"

namespace rtk::sysc {
class Process;
}

namespace rtk::bfm {

class RealTimeClock final : public Device {
public:
    /// Context-explicit form: tick process and event live on `kernel`.
    explicit RealTimeClock(sysc::Kernel& kernel,
                           sysc::Time resolution = sysc::Time::ms(1));
    ~RealTimeClock() override;

    sysc::Event& tick_event() { return tick_; }
    sysc::Time resolution() const { return resolution_; }
    std::uint64_t tick_count() const { return count_; }

    // Device window: offsets 0..3 read the 32-bit tick counter (LE);
    // writing offset 0 clears it.
    const std::string& name() const override { return name_; }
    std::uint8_t read(std::uint16_t offset) override;
    void write(std::uint16_t offset, std::uint8_t value) override;

private:
    std::string name_ = "rtc";
    sysc::Time resolution_;
    sysc::Event tick_;
    std::uint64_t count_ = 0;
    sysc::Process* proc_ = nullptr;
};

}  // namespace rtk::bfm
