// Bus8051 -- the bus-functional model's driver interface (paper §5.1):
// "A bus functional model ... models the external behavior of a processor
// with the surrounding H/W ... based on a Driver Model (handshake
// functions), and represented by BFM calls."
//
// Every call consumes its cycle budget in the caller's T-THREAD
// (ExecContext::bfm_access), performs the functional effect (RAM or
// memory-mapped device access), and notifies access listeners -- which is
// how GUI widgets are "driven by BFM accesses" in the Table 2 experiment.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "bfm/cost.hpp"
#include "bfm/device.hpp"
#include "sim/sim_api.hpp"

namespace rtk::bfm {

class Bus8051 {
public:
    static constexpr std::size_t xdata_size = 0x10000;  ///< 64 KiB MOVX space

    struct AccessEvent {
        std::uint16_t addr;
        bool write;
        bool device;  ///< routed to a mapped device (vs plain XDATA RAM)
    };
    using AccessListener = std::function<void(const AccessEvent&)>;

    Bus8051(sim::SimApi& api, CycleBudgets budgets = CycleBudgets{});

    /// Map `dev` into XDATA at [base, base+size). Overlaps are an error.
    void map(std::uint16_t base, std::uint16_t size, Device& dev);

    // ---- driver-model handshake calls ----
    std::uint8_t read_xdata(std::uint16_t addr);
    void write_xdata(std::uint16_t addr, std::uint8_t value);
    std::uint16_t read_xdata16(std::uint16_t addr);
    void write_xdata16(std::uint16_t addr, std::uint16_t value);

    void add_access_listener(AccessListener fn) {
        listeners_.push_back(std::move(fn));
    }

    // ---- statistics (per-call cycle budgets, Fig 4 table) ----
    std::uint64_t access_count() const { return access_count_; }
    std::uint64_t cycles_consumed() const { return cycles_consumed_; }
    const CycleBudgets& budgets() const { return budgets_; }

    /// Consume `cycles` machine cycles in the calling T-THREAD (exposed
    /// for composite drivers like the serial port).
    void consume(std::uint64_t cycles);

private:
    struct Mapping {
        std::uint16_t base;
        std::uint16_t size;
        Device* dev;
    };
    Mapping* find_mapping(std::uint16_t addr);
    void notify(std::uint16_t addr, bool write, bool device);

    sim::SimApi& api_;
    CycleBudgets budgets_;
    std::vector<std::uint8_t> ram_;
    std::vector<Mapping> mappings_;
    std::vector<AccessListener> listeners_;
    std::uint64_t access_count_ = 0;
    std::uint64_t cycles_consumed_ = 0;
};

}  // namespace rtk::bfm
