// Stackful coroutine used to implement SC_THREAD-style processes.
//
// Built on POSIX ucontext (the same technique as SystemC's QuickThreads
// package): a T-THREAD must be suspendable from arbitrarily deep call
// stacks (T-Kernel service call -> SIM_Wait), which stackless C++20
// coroutines cannot express. Each coroutine owns its stack; destruction
// of a suspended coroutine unwinds the stack by resuming it with a kill
// flag, so RAII destructors on the coroutine stack always run.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <ucontext.h>

namespace rtk::sysc {

/// Exception used to unwind a coroutine stack on kill; user code must let
/// it propagate (catching and swallowing it is a modelling error).
struct CoroutineKilled {};

class Coroutine {
public:
    static constexpr std::size_t default_stack_bytes = 256 * 1024;

    /// The stack is allocated and the body entered at the first resume();
    /// a coroutine that is never resumed costs no stack memory.
    Coroutine(std::function<void()> body, std::size_t stack_bytes = default_stack_bytes);

    /// Unwinds the coroutine stack if still suspended.
    ~Coroutine();

    Coroutine(const Coroutine&) = delete;
    Coroutine& operator=(const Coroutine&) = delete;

    /// Transfer control from the caller into the coroutine. Must not be
    /// called from inside the coroutine itself or after it finished.
    /// If the body exited with an exception, rethrows it here.
    void resume();

    /// Transfer control from inside the coroutine back to the caller.
    /// Throws CoroutineKilled when a kill was requested.
    void yield();

    /// Request stack unwinding: the next resume() makes yield() (and the
    /// pending suspension point) throw CoroutineKilled.
    void kill();

    bool finished() const { return finished_; }
    bool started() const { return started_; }

private:
    static void trampoline(unsigned hi, unsigned lo);
    void run_body();

    std::function<void()> body_;
    std::unique_ptr<char[]> stack_;
    std::size_t stack_bytes_;
    // ASan fiber-annotation bookkeeping (idle in non-sanitized builds):
    // fake-stack handles for each side of a switch plus the bounds of the
    // stack that last resumed us (needed to annotate the switch back).
    void* asan_caller_fake_ = nullptr;
    void* asan_coro_fake_ = nullptr;
    const void* asan_caller_bottom_ = nullptr;
    std::size_t asan_caller_size_ = 0;
    // TSan fiber-annotation bookkeeping (idle in non-sanitized builds):
    // the coroutine's TSan fiber and the fiber of whoever last resumed it
    // (to annotate the switch back; the resumer may change between
    // suspensions when kernels run on different host threads).
    void* tsan_fiber_ = nullptr;
    void* tsan_caller_fiber_ = nullptr;
    ucontext_t ctx_{};
    ucontext_t caller_{};
    bool started_ = false;
    bool finished_ = false;
    bool inside_ = false;
    bool kill_requested_ = false;
    std::exception_ptr pending_exception_;
};

}  // namespace rtk::sysc
