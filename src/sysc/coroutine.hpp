// Stackful coroutine used to implement SC_THREAD-style processes.
//
// A T-THREAD must be suspendable from arbitrarily deep call stacks
// (T-Kernel service call -> SIM_Wait), which stackless C++20 coroutines
// cannot express. Two switch engines sit behind one class:
//
//   - fcontext (default on x86-64 ELF): a handwritten assembly switch
//     that saves callee-saved registers + stack pointer only
//     (sysc/fcontext.hpp) -- the QuickThreads/Boost.Context technique;
//   - POSIX ucontext (RTK_USE_UCONTEXT / other platforms): portable but
//     syscall-class per switch (swapcontext re-saves the signal mask).
//
// Each coroutine borrows its stack from a StackPool (or the heap when no
// pool is given) at first resume and returns it the moment it finishes,
// so terminate/restart churn recycles stacks instead of reallocating.
// Destruction of a suspended coroutine unwinds the stack by resuming it
// with a kill flag, so RAII destructors on the coroutine stack always
// run.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>

#include "sysc/fcontext.hpp"
#include "sysc/stack_pool.hpp"

#if !RTK_FCONTEXT
#include <ucontext.h>
#endif

namespace rtk::sysc {

/// Exception used to unwind a coroutine stack on kill; user code must let
/// it propagate (catching and swallowing it is a modelling error).
struct CoroutineKilled {};

class Coroutine {
public:
    static constexpr std::size_t default_stack_bytes = 256 * 1024;

    /// The stack is acquired (from `pool` when given) and the body
    /// entered at the first resume(); a coroutine that is never resumed
    /// costs no stack memory.
    explicit Coroutine(std::function<void()> body,
                       std::size_t stack_bytes = default_stack_bytes,
                       StackPool* pool = nullptr);

    /// Unwinds the coroutine stack if still suspended.
    ~Coroutine();

    Coroutine(const Coroutine&) = delete;
    Coroutine& operator=(const Coroutine&) = delete;

    /// Transfer control from the caller into the coroutine. Must not be
    /// called from inside the coroutine itself or after it finished.
    /// If the body exited with an exception, rethrows it here.
    void resume();

    /// Transfer control from inside the coroutine back to the caller.
    /// Throws CoroutineKilled when a kill was requested.
    void yield();

    /// Request stack unwinding: the next resume() makes yield() (and the
    /// pending suspension point) throw CoroutineKilled.
    void kill();

    bool finished() const { return finished_; }
    bool started() const { return started_; }

private:
#if RTK_FCONTEXT
    static void entry(rtk_fcontext_t from, void* data);
#else
    static void trampoline(unsigned hi, unsigned lo);
#endif
    void run_body();
    /// Hand the stack back to the pool (or heap) once the coroutine can
    /// never run again.
    void release_stack();

    std::function<void()> body_;
    StackPool* pool_;
    StackPool::Stack stack_{};
    std::size_t stack_bytes_;
    // ASan fiber-annotation bookkeeping (idle in non-sanitized builds):
    // fake-stack handles for each side of a switch plus the bounds of the
    // stack that last resumed us (needed to annotate the switch back).
    void* asan_caller_fake_ = nullptr;
    void* asan_coro_fake_ = nullptr;
    const void* asan_caller_bottom_ = nullptr;
    std::size_t asan_caller_size_ = 0;
    // TSan fiber-annotation bookkeeping (idle in non-sanitized builds):
    // the coroutine's TSan fiber and the fiber of whoever last resumed it
    // (to annotate the switch back; the resumer may change between
    // suspensions when kernels run on different host threads).
    void* tsan_fiber_ = nullptr;
    void* tsan_caller_fiber_ = nullptr;
#if RTK_FCONTEXT
    rtk_fcontext_t fctx_ = nullptr;         ///< suspended coroutine context
    rtk_fcontext_t caller_fctx_ = nullptr;  ///< context to yield back into
#else
    ucontext_t ctx_{};
    ucontext_t caller_{};
#endif
    bool started_ = false;
    bool finished_ = false;
    bool inside_ = false;
    bool kill_requested_ = false;
    std::exception_ptr pending_exception_;
};

}  // namespace rtk::sysc
