// Minimal fcontext-style context switch (the technique of Boost.Context
// and every production fiber library): a switch saves exactly the
// callee-saved registers plus the stack pointer on the suspending stack
// and jumps -- no sigprocmask syscall, no full mcontext save the way
// POSIX swapcontext does it. On x86-64 SysV that is 6 GP registers, the
// x87 control word and MXCSR: ~10 ns instead of the ~100+ ns
// syscall-class cost of swapcontext.
//
// Engine selection (see also the RTK_USE_UCONTEXT option in the
// top-level CMakeLists):
//   - RTK_FCONTEXT is defined to 1 when the assembly engine is usable
//     (x86-64 ELF and not explicitly disabled);
//   - otherwise sysc::Coroutine falls back to POSIX ucontext, which is
//     slower but portable.
#pragma once

#include <cstddef>

#if !defined(RTK_USE_UCONTEXT) && defined(__x86_64__) && defined(__ELF__)
#define RTK_FCONTEXT 1
#else
#define RTK_FCONTEXT 0
#endif

#if RTK_FCONTEXT

extern "C" {

/// Opaque context: the stack pointer of a suspended activation.
/// A value is consumed by the jump that resumes it; the jump returns the
/// *new* suspended context of whoever jumped to us.
using rtk_fcontext_t = void*;

/// Result of a switch, returned in registers (rax:rdx): the context that
/// jumped to us plus the data word it passed.
struct rtk_transfer_t {
    rtk_fcontext_t fctx;
    void* data;
};

/// Carve an initial context out of [sp_top - size, sp_top): entering it
/// calls `fn(from, data)` on that stack, where `from` is the suspended
/// context of the jumping side and `data` its data word. `fn` must never
/// return (it jumps out instead); a return traps in the finish thunk.
rtk_fcontext_t rtk_make_fcontext(void* sp_top, std::size_t size,
                                 void (*fn)(rtk_fcontext_t from, void* data));

/// Suspend the current activation and resume `to`, handing it `data`.
rtk_transfer_t rtk_jump_fcontext(rtk_fcontext_t to, void* data);

}  // extern "C"

#endif  // RTK_FCONTEXT
