// rtk::sysc::Time -- simulation time with picosecond resolution.
//
// Equivalent role to SystemC's sc_time. 64-bit picoseconds gives a
// simulatable range of ~213 days, far beyond any RTOS co-simulation
// scenario in the reproduced paper (seconds of simulated time).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace rtk::sysc {

/// Absolute simulation time or duration, stored as integer picoseconds.
/// Value-semantic, totally ordered, overflow-free for paper-scale runs.
class Time {
public:
    constexpr Time() = default;

    /// Named constructors, SystemC's sc_time(v, SC_NS) style.
    static constexpr Time ps(std::uint64_t v) { return Time{v}; }
    static constexpr Time ns(std::uint64_t v) { return Time{v * 1'000ull}; }
    static constexpr Time us(std::uint64_t v) { return Time{v * 1'000'000ull}; }
    static constexpr Time ms(std::uint64_t v) { return Time{v * 1'000'000'000ull}; }
    static constexpr Time sec(std::uint64_t v) { return Time{v * 1'000'000'000'000ull}; }

    static constexpr Time zero() { return Time{}; }
    static constexpr Time max() { return Time{std::numeric_limits<std::uint64_t>::max()}; }

    constexpr std::uint64_t picoseconds() const { return ps_; }

    constexpr double to_ns() const { return static_cast<double>(ps_) / 1e3; }
    constexpr double to_us() const { return static_cast<double>(ps_) / 1e6; }
    constexpr double to_ms() const { return static_cast<double>(ps_) / 1e9; }
    constexpr double to_sec() const { return static_cast<double>(ps_) / 1e12; }

    constexpr bool is_zero() const { return ps_ == 0; }

    friend constexpr bool operator==(Time a, Time b) { return a.ps_ == b.ps_; }
    friend constexpr bool operator!=(Time a, Time b) { return a.ps_ != b.ps_; }
    friend constexpr bool operator<(Time a, Time b) { return a.ps_ < b.ps_; }
    friend constexpr bool operator<=(Time a, Time b) { return a.ps_ <= b.ps_; }
    friend constexpr bool operator>(Time a, Time b) { return a.ps_ > b.ps_; }
    friend constexpr bool operator>=(Time a, Time b) { return a.ps_ >= b.ps_; }

    friend constexpr Time operator+(Time a, Time b) { return Time{a.ps_ + b.ps_}; }
    /// Saturating subtraction: durations never go negative.
    friend constexpr Time operator-(Time a, Time b) {
        return Time{a.ps_ >= b.ps_ ? a.ps_ - b.ps_ : 0};
    }
    friend constexpr Time operator*(Time a, std::uint64_t k) { return Time{a.ps_ * k}; }
    friend constexpr Time operator*(std::uint64_t k, Time a) { return Time{a.ps_ * k}; }
    friend constexpr Time operator/(Time a, std::uint64_t k) { return Time{a.ps_ / k}; }
    /// Number of whole periods of b contained in a (b must be non-zero).
    friend constexpr std::uint64_t operator/(Time a, Time b) { return a.ps_ / b.ps_; }
    friend constexpr Time operator%(Time a, Time b) { return Time{a.ps_ % b.ps_}; }

    Time& operator+=(Time o) { ps_ += o.ps_; return *this; }
    Time& operator-=(Time o) { ps_ = (ps_ >= o.ps_) ? ps_ - o.ps_ : 0; return *this; }

    /// Human-readable rendering with the largest exact unit, e.g. "3 ms".
    std::string to_string() const;

private:
    constexpr explicit Time(std::uint64_t v) : ps_{v} {}
    std::uint64_t ps_ = 0;
};

}  // namespace rtk::sysc
