// x86-64 SysV implementation of the fcontext switch (see fcontext.hpp).
//
// Register/layout contract, identical to Boost.Context's
// jump_x86_64_sysv_elf_gas.S: a suspended context is an rsp value whose
// frame holds, from the bottom up, MXCSR (4), x87 CW (4), r12, r13, r14,
// r15, rbx, rbp and the return address of the suspended jump. The switch
// itself never executes `ret` across stacks -- it pops the target's
// return address and jumps, so the two activations stay independent.
//
// This translation unit is compiled with -fcf-protection=none (see
// src/CMakeLists.txt): the handwritten switch is not CET-clean (an
// indirect jump resumes the target mid-function), and leaving the CET
// property note off this object disables IBT/SHSTK enforcement for the
// final link instead of faulting on hardware that has it.
#include "sysc/fcontext.hpp"

#if RTK_FCONTEXT

#include "sysc/report.hpp"

extern "C" void rtk_fcontext_on_return() {
    // Entered through the finish thunk when a context entry function
    // returns instead of jumping out -- a contract violation in
    // sysc::Coroutine, never reachable from user code.
    rtk::sysc::report(rtk::sysc::Severity::fatal, "fcontext",
                      "context entry function returned instead of jumping out");
}

__asm__(
    ".text\n"
    ".align 16\n"
    ".globl rtk_jump_fcontext\n"
    ".type rtk_jump_fcontext,@function\n"
    "rtk_jump_fcontext:\n"
    /* Save the suspending side: FP control state + callee-saved GPRs.  */
    "    leaq    -0x38(%rsp), %rsp\n"
    "    stmxcsr 0x00(%rsp)\n"
    "    fnstcw  0x04(%rsp)\n"
    "    movq    %r12, 0x08(%rsp)\n"
    "    movq    %r13, 0x10(%rsp)\n"
    "    movq    %r14, 0x18(%rsp)\n"
    "    movq    %r15, 0x20(%rsp)\n"
    "    movq    %rbx, 0x28(%rsp)\n"
    "    movq    %rbp, 0x30(%rsp)\n"
    /* The old rsp IS the suspended context; hand it to the target.      */
    "    movq    %rsp, %rax\n"
    "    movq    %rdi, %rsp\n"
    /* Restore the target: return address, FP control state, GPRs.       */
    "    movq    0x38(%rsp), %r8\n"
    "    ldmxcsr 0x00(%rsp)\n"
    "    fldcw   0x04(%rsp)\n"
    "    movq    0x08(%rsp), %r12\n"
    "    movq    0x10(%rsp), %r13\n"
    "    movq    0x18(%rsp), %r14\n"
    "    movq    0x20(%rsp), %r15\n"
    "    movq    0x28(%rsp), %rbx\n"
    "    movq    0x30(%rsp), %rbp\n"
    "    leaq    0x40(%rsp), %rsp\n"
    /* rtk_transfer_t return value (rax:rdx) for a resumed jump, and the
       same pair in rdi:rsi as arguments for a first-entry function.     */
    "    movq    %rsi, %rdx\n"
    "    movq    %rax, %rdi\n"
    "    jmp     *%r8\n"
    ".size rtk_jump_fcontext,.-rtk_jump_fcontext\n"
    "\n"
    ".align 16\n"
    ".globl rtk_make_fcontext\n"
    ".type rtk_make_fcontext,@function\n"
    "rtk_make_fcontext:\n"
    /* Context base: 16-byte-aligned stack top minus one switch frame.   */
    "    movq    %rdi, %rax\n"
    "    andq    $-16, %rax\n"
    "    leaq    -0x40(%rax), %rax\n"
    /* Entry function lands in rbx; trampoline is the 'return address'
       the first jump pops, finish the frame the entry would return to.  */
    "    movq    %rdx, 0x28(%rax)\n"
    "    stmxcsr 0x00(%rax)\n"
    "    fnstcw  0x04(%rax)\n"
    "    leaq    1f(%rip), %rcx\n"
    "    movq    %rcx, 0x38(%rax)\n"
    "    leaq    2f(%rip), %rcx\n"
    "    movq    %rcx, 0x30(%rax)\n"
    "    ret\n"
    "1:\n" /* trampoline: align the stack like a call would, enter fn */
    "    push    %rbp\n"
    "    jmp     *%rbx\n"
    "2:\n" /* finish: the entry function returned -- fatal */
    "    call    rtk_fcontext_on_return@PLT\n"
    "    hlt\n"
    ".size rtk_make_fcontext,.-rtk_make_fcontext\n");

#endif  // RTK_FCONTEXT
