#include "sysc/coroutine.hpp"

#include <cstdint>

#include "sysc/report.hpp"

namespace rtk::sysc {

Coroutine::Coroutine(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)),
      stack_(std::make_unique<char[]>(stack_bytes)),
      stack_bytes_(stack_bytes) {}

Coroutine::~Coroutine() {
    if (started_ && !finished_) {
        kill();
        try {
            resume();  // unwind the suspended stack
        } catch (...) {
            // Destructors must not throw; the body's exception (if any)
            // is intentionally dropped during teardown.
        }
    }
}

void Coroutine::trampoline(unsigned hi, unsigned lo) {
    auto ptr = (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
    reinterpret_cast<Coroutine*>(ptr)->run_body();
    // Returning lets ucontext follow uc_link back to the caller context.
}

void Coroutine::run_body() {
    try {
        if (kill_requested_) {
            throw CoroutineKilled{};
        }
        body_();
    } catch (const CoroutineKilled&) {
        // normal kill-unwind
    } catch (...) {
        pending_exception_ = std::current_exception();
    }
    finished_ = true;
}

void Coroutine::resume() {
    if (finished_) {
        report(Severity::fatal, "coroutine", "resume() on finished coroutine");
    }
    if (inside_) {
        report(Severity::fatal, "coroutine", "resume() from inside the coroutine");
    }
    if (!started_) {
        started_ = true;
        getcontext(&ctx_);
        ctx_.uc_stack.ss_sp = stack_.get();
        ctx_.uc_stack.ss_size = stack_bytes_;
        ctx_.uc_link = &caller_;
        auto ptr = reinterpret_cast<std::uintptr_t>(this);
        makecontext(&ctx_, reinterpret_cast<void (*)()>(&Coroutine::trampoline), 2,
                    static_cast<unsigned>(ptr >> 32),
                    static_cast<unsigned>(ptr & 0xffffffffu));
    }
    inside_ = true;
    swapcontext(&caller_, &ctx_);
    inside_ = false;
    if (finished_ && pending_exception_) {
        auto ex = pending_exception_;
        pending_exception_ = nullptr;
        std::rethrow_exception(ex);
    }
}

void Coroutine::yield() {
    if (!inside_) {
        report(Severity::fatal, "coroutine", "yield() outside the coroutine");
    }
    swapcontext(&ctx_, &caller_);
    if (kill_requested_) {
        throw CoroutineKilled{};
    }
}

void Coroutine::kill() {
    kill_requested_ = true;
}

}  // namespace rtk::sysc
