#include "sysc/coroutine.hpp"

#include <cstdint>

#include "sysc/report.hpp"

// AddressSanitizer cannot follow stack switches on its own; the fiber
// annotations below tell it when execution moves between the host stack
// and a coroutine stack (otherwise every switch looks like a wild stack
// access and the sanitizer CI job drowns in false positives). The
// annotations are engine-independent: they bracket the fcontext jump
// exactly like they bracketed swapcontext.
#if defined(__SANITIZE_ADDRESS__)
#define RTK_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RTK_ASAN_FIBERS 1
#endif
#endif

#ifdef RTK_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

// ThreadSanitizer likewise needs to be told about stack switches, via its
// fiber API -- without it every coroutine switch scrambles TSan's per-
// thread shadow state and the multi-threaded harness suite drowns in
// false positives.
#if defined(__SANITIZE_THREAD__)
#define RTK_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RTK_TSAN_FIBERS 1
#endif
#endif

#ifdef RTK_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace rtk::sysc {

namespace {

inline void asan_start_switch(void** fake_stack_save, const void* bottom,
                              std::size_t size) {
#ifdef RTK_ASAN_FIBERS
    __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
    (void)fake_stack_save;
    (void)bottom;
    (void)size;
#endif
}

inline void asan_finish_switch(void* fake_stack_save, const void** bottom_old,
                               std::size_t* size_old) {
#ifdef RTK_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(fake_stack_save, bottom_old, size_old);
#else
    (void)fake_stack_save;
    (void)bottom_old;
    (void)size_old;
#endif
}

inline void* tsan_create_fiber() {
#ifdef RTK_TSAN_FIBERS
    return __tsan_create_fiber(0);
#else
    return nullptr;
#endif
}

inline void tsan_destroy_fiber(void* fiber) {
#ifdef RTK_TSAN_FIBERS
    if (fiber != nullptr) {
        __tsan_destroy_fiber(fiber);
    }
#else
    (void)fiber;
#endif
}

inline void* tsan_current_fiber() {
#ifdef RTK_TSAN_FIBERS
    return __tsan_get_current_fiber();
#else
    return nullptr;
#endif
}

inline void tsan_switch_fiber(void* fiber) {
#ifdef RTK_TSAN_FIBERS
    if (fiber != nullptr) {
        __tsan_switch_to_fiber(fiber, 0);
    }
#else
    (void)fiber;
#endif
}

}  // namespace

Coroutine::Coroutine(std::function<void()> body, std::size_t stack_bytes,
                     StackPool* pool)
    : body_(std::move(body)), pool_(pool), stack_bytes_(stack_bytes) {}

Coroutine::~Coroutine() {
    if (started_ && !finished_) {
        kill();
        try {
            resume();  // unwind the suspended stack
        } catch (...) {
            // Destructors must not throw; the body's exception (if any)
            // is intentionally dropped during teardown.
        }
    }
    release_stack();  // no-op on the common path (released at finish)
    tsan_destroy_fiber(tsan_fiber_);
}

void Coroutine::release_stack() {
    if (stack_.base == nullptr) {
        return;
    }
    if (pool_ != nullptr) {
        pool_->release(stack_);
    } else {
        delete[] stack_.base;
    }
    stack_ = StackPool::Stack{};
}

#if RTK_FCONTEXT

void Coroutine::entry(rtk_fcontext_t from, void* data) {
    auto* c = static_cast<Coroutine*>(data);
    c->caller_fctx_ = from;
    c->run_body();
    // The coroutine stack dies here: a null fake-stack handle tells ASan
    // to release it before the final jump back to the caller context.
    // TSan stays on the coroutine's fiber across that jump -- the
    // pending function-exit events of this frame must pop from the
    // fiber's shadow stack where their entries were pushed; resume()
    // switches the fiber back afterwards.
    asan_start_switch(nullptr, c->asan_caller_bottom_, c->asan_caller_size_);
    rtk_jump_fcontext(c->caller_fctx_, nullptr);  // never returns
}

#else  // ucontext fallback

void Coroutine::trampoline(unsigned hi, unsigned lo) {
    auto ptr = (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
    auto* c = reinterpret_cast<Coroutine*>(ptr);
    c->run_body();
    // The coroutine stack dies here: a null fake-stack handle tells ASan
    // to release it before uc_link switches back to the caller context.
    // TSan stays on the coroutine's fiber across the uc_link return --
    // the pending function-exit events of this frame and of the caller's
    // swapcontext must pop from the fiber's shadow stack where their
    // entries were pushed; resume() switches the fiber back afterwards.
    asan_start_switch(nullptr, c->asan_caller_bottom_, c->asan_caller_size_);
    // Returning lets ucontext follow uc_link back to the caller context.
}

#endif

void Coroutine::run_body() {
    // First instants on the coroutine stack: complete the switch ASan saw
    // begin in resume(), learning the caller's stack bounds on the way.
    asan_finish_switch(asan_coro_fake_, &asan_caller_bottom_, &asan_caller_size_);
    try {
        if (kill_requested_) {
            throw CoroutineKilled{};
        }
        body_();
    } catch (const CoroutineKilled&) {
        // normal kill-unwind
    } catch (...) {
        pending_exception_ = std::current_exception();
    }
    finished_ = true;
}

void Coroutine::resume() {
    if (finished_) {
        report(Severity::fatal, "coroutine", "resume() on finished coroutine");
    }
    if (inside_) {
        report(Severity::fatal, "coroutine", "resume() from inside the coroutine");
    }
    if (!started_) {
        started_ = true;
        // The stack is acquired on first entry, not at construction, so
        // processes that never run (mass-created tasks in large-N
        // scenarios) cost no stack memory.
        stack_ = pool_ != nullptr ? pool_->acquire(stack_bytes_)
                                  : StackPool::Stack{new char[stack_bytes_],
                                                     stack_bytes_};
#if RTK_FCONTEXT
        fctx_ = rtk_make_fcontext(stack_.base + stack_.bytes, stack_.bytes,
                                  &Coroutine::entry);
#else
        getcontext(&ctx_);
        ctx_.uc_stack.ss_sp = stack_.base;
        ctx_.uc_stack.ss_size = stack_.bytes;
        ctx_.uc_link = &caller_;
        auto ptr = reinterpret_cast<std::uintptr_t>(this);
        makecontext(&ctx_, reinterpret_cast<void (*)()>(&Coroutine::trampoline), 2,
                    static_cast<unsigned>(ptr >> 32),
                    static_cast<unsigned>(ptr & 0xffffffffu));
#endif
        tsan_fiber_ = tsan_create_fiber();
    }
    inside_ = true;
    asan_start_switch(&asan_caller_fake_, stack_.base, stack_.bytes);
    tsan_caller_fiber_ = tsan_current_fiber();
    tsan_switch_fiber(tsan_fiber_);
#if RTK_FCONTEXT
    const rtk_transfer_t t = rtk_jump_fcontext(fctx_, this);
    fctx_ = t.fctx;  // null after the final jump (finished_ set)
#else
    swapcontext(&caller_, &ctx_);
#endif
    asan_finish_switch(asan_caller_fake_, nullptr, nullptr);
    if (finished_) {
        // Came back through the final jump (no annotation on that path):
        // leave the dead coroutine's fiber now that its shadow stack is
        // drained, and hand the stack straight back to the pool -- the
        // coroutine can never run again.
        tsan_switch_fiber(tsan_caller_fiber_);
        release_stack();
    }
    inside_ = false;
    if (finished_ && pending_exception_) {
        auto ex = pending_exception_;
        pending_exception_ = nullptr;
        std::rethrow_exception(ex);
    }
}

void Coroutine::yield() {
    if (!inside_) {
        report(Severity::fatal, "coroutine", "yield() outside the coroutine");
    }
    asan_start_switch(&asan_coro_fake_, asan_caller_bottom_, asan_caller_size_);
    tsan_switch_fiber(tsan_caller_fiber_);
#if RTK_FCONTEXT
    const rtk_transfer_t t = rtk_jump_fcontext(caller_fctx_, nullptr);
    caller_fctx_ = t.fctx;  // the resumer may differ between suspensions
#else
    swapcontext(&ctx_, &caller_);
#endif
    // Back on the coroutine stack; the resumer may be a different host
    // stack than last time, so refresh the recorded caller bounds.
    asan_finish_switch(asan_coro_fake_, &asan_caller_bottom_, &asan_caller_size_);
    if (kill_requested_) {
        throw CoroutineKilled{};
    }
}

void Coroutine::kill() {
    kill_requested_ = true;
}

}  // namespace rtk::sysc
