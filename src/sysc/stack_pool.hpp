// Recycling allocator for coroutine stacks.
//
// Every T-THREAD terminate/restart cycle (tk_ter_tsk, teardown between
// fuzz scenarios) used to pay a fresh `new char[256K]` plus first-touch
// page faults for the replacement coroutine stack. A StackPool keeps the
// stacks of finished coroutines and hands them back for the next spawn:
// the pool is LIFO (the hottest stack -- caches and TLB still warm -- is
// reused first) and size-segregated (a request is only satisfied by a
// stack of exactly the requested geometry, so mixed stack sizes never
// alias).
//
// One pool per sysc::Kernel (Kernel::stack_pool()); coroutines without a
// pool fall back to plain heap allocation. Not thread-safe -- like the
// kernel that owns it, a pool is confined to one host thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rtk::sysc {

class StackPool {
public:
    /// One coroutine stack: base (lowest address) + size in bytes.
    struct Stack {
        char* base = nullptr;
        std::size_t bytes = 0;
    };

    /// `max_cached` bounds the number of idle stacks kept alive; with the
    /// 256 KiB default coroutine stack the default cap holds 8 MiB.
    explicit StackPool(std::size_t max_cached = 32) : max_cached_(max_cached) {}
    ~StackPool();

    StackPool(const StackPool&) = delete;
    StackPool& operator=(const StackPool&) = delete;

    /// A stack of exactly `bytes` bytes: recycled (LIFO) when one of that
    /// geometry is idle in the pool, freshly allocated otherwise.
    Stack acquire(std::size_t bytes);

    /// Return a stack to the pool; freed immediately when the cache is
    /// already at max_cached(). Accepts empty stacks as a no-op.
    void release(Stack s);

    std::size_t cached() const { return free_.size(); }
    std::size_t cached_bytes() const;
    std::size_t max_cached() const { return max_cached_; }
    /// Shrinking the cap frees surplus idle stacks immediately.
    void set_max_cached(std::size_t n);

    // ---- statistics (tests / BENCH_context_switch) ----
    std::uint64_t total_acquires() const { return acquires_; }
    std::uint64_t total_reuses() const { return reuses_; }

private:
    std::vector<Stack> free_;  ///< idle stacks, LIFO
    std::size_t max_cached_;
    std::uint64_t acquires_ = 0;
    std::uint64_t reuses_ = 0;
};

}  // namespace rtk::sysc
