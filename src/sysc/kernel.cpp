#include "sysc/kernel.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>

#include "sysc/report.hpp"

namespace rtk::sysc {

namespace {
// Two thread-local views of "the" kernel (see Kernel::current()):
//  - the construction-nesting chain, linked through Kernel::chain_prev_,
//    headed by the most recently constructed live kernel of this thread;
//  - the execution binding, pushed by Kernel::Bind around every entry
//    into the simulation (run loops, spawn, process teardown).
// Keeping them separate makes destruction order-independent: unlinking a
// kernel from the middle of the chain never disturbs whichever kernel is
// currently executing.
thread_local Kernel* t_chain_head = nullptr;
thread_local Kernel* t_active = nullptr;
}  // namespace

Kernel::Bind::Bind(Kernel& k) : prev_(t_active) {
    t_active = &k;
}

Kernel::Bind::~Bind() {
    t_active = prev_;
}

Kernel::Kernel() {
    chain_prev_ = t_chain_head;
    t_chain_head = this;
}

Kernel::~Kernel() {
    // Kill suspended processes so their coroutine stacks unwind with RAII
    // intact, then destroy them while the kernel queues (which their event
    // destructors deregister from) are still alive. The unwinding stacks
    // may call ambient-context code, so bind this kernel for the duration.
    {
        Bind bind(*this);
        for (auto& p : processes_) {
            try {
                kill_process(*p);
            } catch (...) {
                // teardown: drop exceptions from unwinding bodies
            }
        }
        processes_.clear();
    }
    // Unlink from the owning thread's construction chain, wherever this
    // kernel sits in it -- kernels may die in any order, not just LIFO.
    if (t_chain_head == this) {
        t_chain_head = chain_prev_;
        return;
    }
    for (Kernel* k = t_chain_head; k != nullptr; k = k->chain_prev_) {
        if (k->chain_prev_ == this) {
            k->chain_prev_ = chain_prev_;
            return;
        }
    }
    // Not on this thread's chain: the kernel is being destroyed on a
    // different thread than it was constructed on. The constructing
    // thread's chain still points at this dying object, so there is no
    // safe way to continue.
    try {
        report(Severity::error, "kernel",
               "kernel destroyed on a different thread than it was constructed on "
               "(mismatched kernel nesting)");
    } catch (...) {
    }
    std::abort();
}

Kernel& Kernel::current() {
    Kernel* k = current_or_null();
    if (k == nullptr) {
        report(Severity::fatal, "kernel", "no active simulation kernel on this thread");
    }
    return *k;
}

Kernel* Kernel::current_or_null() {
    return t_active != nullptr ? t_active : t_chain_head;
}

Process& Kernel::spawn(std::string name, std::function<void()> body, SpawnOptions opts) {
    // Bind while the Process (and its member events) constructs, so the
    // new process always belongs to the kernel it is spawned on.
    Bind bind(*this);
    auto proc = std::unique_ptr<Process>(new Process(
        *this, std::move(name), std::move(body), opts.stack_bytes, next_process_id_++));
    Process& ref = *proc;
    processes_.push_back(std::move(proc));
    ref.state_ = Process::State::runnable;
    ref.in_runnable_ = true;
    runnable_.push_back(&ref);
    return ref;
}

bool Kernel::idle() const {
    return runnable_.empty() && delta_queue_.empty() && update_queue_.empty() &&
           first_fresh_timed() == nullptr;
}

Time Kernel::next_activity_at() const {
    if (!runnable_.empty() || !delta_queue_.empty() || !update_queue_.empty()) {
        return now_;
    }
    const TimedEntry* top = first_fresh_timed();
    return top == nullptr ? Time::max() : top->at;
}

// ---- timed-event heap -------------------------------------------------------
//
// Indexed binary min-heap keyed by (time, insertion order): push and
// index-removal are O(log n), the earliest-entry lookup is O(1). Every
// Event holds at most one slot (Event::timed_index_); re-notification
// repositions that slot in place, and cancellation stays lazy (the seq /
// pending flags on the event mark the slot stale) until the entry
// surfaces at the top or the event dies.

bool Kernel::timed_before(const TimedEntry& a, const TimedEntry& b) {
    return a.at < b.at || (a.at == b.at && a.order < b.order);
}

void Kernel::timed_set_index(std::size_t i) const {
    timed_[i].event->timed_index_ = i;
}

void Kernel::timed_sift_up(std::size_t i) const {
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!timed_before(timed_[i], timed_[parent])) {
            break;
        }
        std::swap(timed_[i], timed_[parent]);
        timed_set_index(i);
        timed_set_index(parent);
        i = parent;
    }
}

void Kernel::timed_sift_down(std::size_t i) const {
    for (;;) {
        std::size_t best = i;
        const std::size_t l = 2 * i + 1;
        const std::size_t r = 2 * i + 2;
        if (l < timed_.size() && timed_before(timed_[l], timed_[best])) {
            best = l;
        }
        if (r < timed_.size() && timed_before(timed_[r], timed_[best])) {
            best = r;
        }
        if (best == i) {
            return;
        }
        std::swap(timed_[i], timed_[best]);
        timed_set_index(i);
        timed_set_index(best);
        i = best;
    }
}

void Kernel::timed_erase_at(std::size_t i) const {
    timed_[i].event->timed_index_ = Event::timed_npos;
    const std::size_t last = timed_.size() - 1;
    if (i != last) {
        timed_[i] = timed_[last];
        timed_set_index(i);
        timed_.pop_back();
        timed_sift_down(i);
        timed_sift_up(i);
    } else {
        timed_.pop_back();
    }
}

const Kernel::TimedEntry* Kernel::first_fresh_timed() const {
    while (!timed_.empty() &&
           timed_.front().event->pending_ != Event::Pending::timed) {
        timed_erase_at(0);  // stale: cancelled or superseded notification
    }
    return timed_.empty() ? nullptr : &timed_.front();
}

Process* Kernel::find_process(const std::string& name) const {
    for (const auto& p : processes_) {
        if (p->name() == name) {
            return p.get();
        }
    }
    return nullptr;
}

std::vector<Process*> Kernel::processes() const {
    std::vector<Process*> out;
    out.reserve(processes_.size());
    for (const auto& p : processes_) {
        out.push_back(p.get());
    }
    return out;
}

void Kernel::request_update(UpdateListener& listener) {
    update_queue_.push_back(&listener);
}

void Kernel::add_timestep_hook(std::function<void(Time)> hook) {
    timestep_hooks_.push_back(std::move(hook));
}

void Kernel::schedule_delta(Event& e) {
    if (e.in_delta_queue_) {
        return;  // a single queue slot serves any number of re-notifies
    }
    e.in_delta_queue_ = true;
    delta_queue_.push_back(&e);
}

void Kernel::schedule_timed(Event& e, Time at) {
    if (e.timed_index_ == Event::timed_npos) {
        timed_.push_back(TimedEntry{at, timed_order_++, &e});
        e.timed_index_ = timed_.size() - 1;
        timed_sift_up(timed_.size() - 1);
        return;
    }
    // Reposition the event's existing slot (fresh insertion order keeps
    // FIFO-among-equal-times identical to scheduling a new entry).
    const std::size_t i = e.timed_index_;
    timed_[i].at = at;
    timed_[i].order = timed_order_++;
    timed_sift_down(i);
    timed_sift_up(i);
}

void Kernel::forget_event(Event& e) {
    // Destructor-only path. Membership flags make the common case (event
    // not queued anywhere) O(1); the delta scan runs only for an event
    // dying with a delta notification in flight.
    if (e.in_delta_queue_) {
        delta_queue_.erase(std::remove(delta_queue_.begin(), delta_queue_.end(), &e),
                           delta_queue_.end());
        e.in_delta_queue_ = false;
    }
    if (e.timed_index_ != Event::timed_npos) {
        timed_erase_at(e.timed_index_);
    }
}

void Kernel::make_runnable(Process& p, Event* cause) {
    if (p.state_ == Process::State::terminated) {
        return;
    }
    // Deregister from every event in the wait set (or-semantics).
    for (Event* e : p.waiting_on_) {
        auto& ws = e->waiters_;
        ws.erase(std::remove(ws.begin(), ws.end(), &p), ws.end());
    }
    p.waiting_on_.clear();
    p.triggered_by_ = cause;
    p.state_ = Process::State::runnable;
    if (!p.in_runnable_) {
        p.in_runnable_ = true;
        runnable_.push_back(&p);
    }
}

void Kernel::do_wait(const std::vector<Event*>& events) {
    Process* p = current_process_;
    if (p == nullptr) {
        report(Severity::fatal, "kernel", "wait() outside any simulation process");
    }
    if (events.empty()) {
        report(Severity::fatal, "kernel", "wait() on an empty event set would never wake");
    }
    p->waiting_on_ = events;
    for (Event* e : events) {
        e->waiters_.push_back(p);
    }
    p->state_ = Process::State::waiting;
    p->coro_.yield();  // throws CoroutineKilled on kill
}

void Kernel::kill_process(Process& p) {
    if (p.state_ == Process::State::terminated) {
        return;
    }
    // The unwinding coroutine stack may run ambient-context code (RAII
    // guards calling now()/wait machinery observers).
    Bind bind(*this);
    // Deregister from events and the runnable queue. The queue scan runs
    // only when the process is actually queued (O(1) membership flag) so
    // the idle()/next_activity_at() observers never see the dead entry.
    for (Event* e : p.waiting_on_) {
        auto& ws = e->waiters_;
        ws.erase(std::remove(ws.begin(), ws.end(), &p), ws.end());
    }
    p.waiting_on_.clear();
    if (p.in_runnable_) {
        runnable_.erase(std::remove(runnable_.begin(), runnable_.end(), &p),
                        runnable_.end());
        p.in_runnable_ = false;
    }

    const bool suicide = (current_process_ == &p);
    p.state_ = Process::State::terminated;
    p.terminated_ev_.notify_delta();
    p.coro_.kill();
    if (suicide) {
        p.coro_.yield();  // throws CoroutineKilled; never returns
    }
    if (p.coro_.started() && !p.coro_.finished()) {
        Process* saved = current_process_;
        current_process_ = &p;
        p.coro_.resume();  // unwind the suspended stack now
        current_process_ = saved;
    }
}

void Kernel::run_process(Process& p) {
    current_process_ = &p;
    p.state_ = Process::State::running;
    try {
        p.coro_.resume();
    } catch (...) {
        // An exception escaped the process body: mark it dead and let the
        // caller of run() observe the error.
        p.state_ = Process::State::terminated;
        p.terminated_ev_.notify_delta();
        current_process_ = nullptr;
        throw;
    }
    current_process_ = nullptr;
    if (p.coro_.finished() && p.state_ != Process::State::terminated) {
        p.state_ = Process::State::terminated;
        p.terminated_ev_.notify_delta();
    }
}

bool Kernel::crunch() {
    bool any = false;
    // Evaluate phase: run processes in deterministic FIFO wake order.
    while (!runnable_.empty()) {
        Process* p = runnable_.front();
        runnable_.pop_front();
        p->in_runnable_ = false;
        if (p->state_ != Process::State::runnable) {
            continue;  // killed or re-dispatched since queued
        }
        any = true;
        run_process(*p);
    }
    // Update phase (primitive channels).
    auto updates = std::move(update_queue_);
    update_queue_.clear();
    for (UpdateListener* u : updates) {
        any = true;
        u->perform_update();
    }
    // Delta-notification phase.
    auto deltas = std::move(delta_queue_);
    delta_queue_.clear();
    for (Event* e : deltas) {
        e->in_delta_queue_ = false;  // re-notifies from trigger() re-queue
        if (e->pending_ == Event::Pending::delta) {
            any = true;
            e->trigger();
        }
    }
    if (any) {
        ++delta_count_;
        for (auto& hook : timestep_hooks_) {
            hook(now_);
        }
    }
    return any;
}

void Kernel::advance_to(Time t) {
    now_ = t;
    // Detach every entry due at <= t in (time, order) heap order, then
    // trigger the fresh ones. An event with pending_ == timed always has
    // its single heap slot at pending_at_, so the pending flag alone
    // distinguishes fresh entries from lazily-cancelled ones.
    std::vector<Event*> due;
    while (!timed_.empty() && !(t < timed_.front().at)) {
        due.push_back(timed_.front().event);
        timed_erase_at(0);
    }
    for (Event* e : due) {
        if (e->pending_ == Event::Pending::timed) {
            e->trigger();
        }
    }
}

void Kernel::run_loop(Time limit) {
    Bind bind(*this);  // model code inside processes resolves current() to us
    stop_requested_ = false;
    if (delta_budget_exhausted_) {
        return;
    }
    for (;;) {
        while (crunch()) {
            if (stop_requested_) {
                return;
            }
            if (delta_budget_ != 0 && --delta_budget_ == 0) {
                delta_budget_exhausted_ = true;
                return;
            }
        }
        if (stop_requested_) {
            return;
        }
        // Advance to the earliest *fresh* timed notification.
        const TimedEntry* top = first_fresh_timed();
        if (top == nullptr || top->at > limit) {
            return;
        }
        advance_to(top->at);
    }
}

void Kernel::run() {
    run_loop(Time::max());
}

void Kernel::run_until(Time t) {
    if (t < now_) {
        report(Severity::fatal, "kernel", "run_until() into the past");
    }
    run_loop(t);
    if (!stop_requested_ && !delta_budget_exhausted_ && t != Time::max()) {
        now_ = t;  // step semantics: the clock always reaches the step end
    }
}

void Kernel::run_for(Time d) {
    run_until(now_ + d);
}

bool Kernel::step_delta() {
    Bind bind(*this);
    return crunch();
}

}  // namespace rtk::sysc
