#include "sysc/kernel.hpp"

#include <algorithm>
#include <cstdint>

#include "sysc/report.hpp"

namespace rtk::sysc {

namespace {
thread_local Kernel* g_current_kernel = nullptr;
}

Kernel::Kernel() {
    previous_current_ = g_current_kernel;
    g_current_kernel = this;
}

Kernel::~Kernel() {
    // Kill suspended processes so their coroutine stacks unwind with RAII
    // intact, then destroy them while the kernel queues (which their event
    // destructors deregister from) are still alive.
    for (auto& p : processes_) {
        try {
            kill_process(*p);
        } catch (...) {
            // teardown: drop exceptions from unwinding bodies
        }
    }
    processes_.clear();
    g_current_kernel = previous_current_;
}

Kernel& Kernel::current() {
    if (g_current_kernel == nullptr) {
        report(Severity::fatal, "kernel", "no active simulation kernel on this thread");
    }
    return *g_current_kernel;
}

Kernel* Kernel::current_or_null() {
    return g_current_kernel;
}

Process& Kernel::spawn(std::string name, std::function<void()> body, SpawnOptions opts) {
    auto proc = std::unique_ptr<Process>(new Process(
        *this, std::move(name), std::move(body), opts.stack_bytes, next_process_id_++));
    Process& ref = *proc;
    processes_.push_back(std::move(proc));
    ref.state_ = Process::State::runnable;
    runnable_.push_back(&ref);
    return ref;
}

bool Kernel::idle() const {
    return runnable_.empty() && delta_queue_.empty() && timed_.empty() &&
           update_queue_.empty();
}

Time Kernel::next_activity_at() const {
    if (!runnable_.empty() || !delta_queue_.empty() || !update_queue_.empty()) {
        return now_;
    }
    for (const auto& [at, entry] : timed_) {
        Event* e = entry.first;
        if (e->pending_ == Event::Pending::timed && e->seq_ == entry.second) {
            return at;
        }
    }
    return Time::max();
}

Process* Kernel::find_process(const std::string& name) const {
    for (const auto& p : processes_) {
        if (p->name() == name) {
            return p.get();
        }
    }
    return nullptr;
}

std::vector<Process*> Kernel::processes() const {
    std::vector<Process*> out;
    out.reserve(processes_.size());
    for (const auto& p : processes_) {
        out.push_back(p.get());
    }
    return out;
}

void Kernel::request_update(UpdateListener& listener) {
    update_queue_.push_back(&listener);
}

void Kernel::add_timestep_hook(std::function<void(Time)> hook) {
    timestep_hooks_.push_back(std::move(hook));
}

void Kernel::schedule_delta(Event& e) {
    delta_queue_.push_back(&e);
}

void Kernel::schedule_timed(Event& e, Time at) {
    timed_.emplace(at, std::make_pair(&e, e.seq_));
}

void Kernel::forget_event(Event& e) {
    delta_queue_.erase(std::remove(delta_queue_.begin(), delta_queue_.end(), &e),
                       delta_queue_.end());
    for (auto it = timed_.begin(); it != timed_.end();) {
        if (it->second.first == &e) {
            it = timed_.erase(it);
        } else {
            ++it;
        }
    }
}

void Kernel::make_runnable(Process& p, Event* cause) {
    if (p.state_ == Process::State::terminated) {
        return;
    }
    // Deregister from every event in the wait set (or-semantics).
    for (Event* e : p.waiting_on_) {
        auto& ws = e->waiters_;
        ws.erase(std::remove(ws.begin(), ws.end(), &p), ws.end());
    }
    p.waiting_on_.clear();
    p.triggered_by_ = cause;
    p.state_ = Process::State::runnable;
    runnable_.push_back(&p);
}

void Kernel::do_wait(const std::vector<Event*>& events) {
    Process* p = current_process_;
    if (p == nullptr) {
        report(Severity::fatal, "kernel", "wait() outside any simulation process");
    }
    if (events.empty()) {
        report(Severity::fatal, "kernel", "wait() on an empty event set would never wake");
    }
    p->waiting_on_ = events;
    for (Event* e : events) {
        e->waiters_.push_back(p);
    }
    p->state_ = Process::State::waiting;
    p->coro_.yield();  // throws CoroutineKilled on kill
}

void Kernel::kill_process(Process& p) {
    if (p.state_ == Process::State::terminated) {
        return;
    }
    // Deregister from events and the runnable queue.
    for (Event* e : p.waiting_on_) {
        auto& ws = e->waiters_;
        ws.erase(std::remove(ws.begin(), ws.end(), &p), ws.end());
    }
    p.waiting_on_.clear();
    runnable_.erase(std::remove(runnable_.begin(), runnable_.end(), &p), runnable_.end());

    const bool suicide = (current_process_ == &p);
    p.state_ = Process::State::terminated;
    p.terminated_ev_.notify_delta();
    p.coro_.kill();
    if (suicide) {
        p.coro_.yield();  // throws CoroutineKilled; never returns
    }
    if (p.coro_.started() && !p.coro_.finished()) {
        Process* saved = current_process_;
        current_process_ = &p;
        p.coro_.resume();  // unwind the suspended stack now
        current_process_ = saved;
    }
}

void Kernel::run_process(Process& p) {
    current_process_ = &p;
    p.state_ = Process::State::running;
    try {
        p.coro_.resume();
    } catch (...) {
        // An exception escaped the process body: mark it dead and let the
        // caller of run() observe the error.
        p.state_ = Process::State::terminated;
        p.terminated_ev_.notify_delta();
        current_process_ = nullptr;
        throw;
    }
    current_process_ = nullptr;
    if (p.coro_.finished() && p.state_ != Process::State::terminated) {
        p.state_ = Process::State::terminated;
        p.terminated_ev_.notify_delta();
    }
}

bool Kernel::crunch() {
    bool any = false;
    // Evaluate phase: run processes in deterministic FIFO wake order.
    while (!runnable_.empty()) {
        Process* p = runnable_.front();
        runnable_.pop_front();
        if (p->state_ != Process::State::runnable) {
            continue;  // killed or re-dispatched since queued
        }
        any = true;
        run_process(*p);
    }
    // Update phase (primitive channels).
    auto updates = std::move(update_queue_);
    update_queue_.clear();
    for (UpdateListener* u : updates) {
        any = true;
        u->perform_update();
    }
    // Delta-notification phase.
    auto deltas = std::move(delta_queue_);
    delta_queue_.clear();
    for (Event* e : deltas) {
        if (e->pending_ == Event::Pending::delta) {
            any = true;
            e->trigger();
        }
    }
    if (any) {
        ++delta_count_;
        for (auto& hook : timestep_hooks_) {
            hook(now_);
        }
    }
    return any;
}

void Kernel::advance_to(Time t) {
    now_ = t;
    // Trigger all fresh timed notifications scheduled exactly at t.
    auto range_end = timed_.upper_bound(t);
    std::vector<std::pair<Event*, std::uint64_t>> due;
    for (auto it = timed_.begin(); it != range_end; ++it) {
        due.push_back(it->second);
    }
    timed_.erase(timed_.begin(), range_end);
    for (auto& [e, seq] : due) {
        if (e->pending_ == Event::Pending::timed && e->seq_ == seq) {
            e->trigger();
        }
    }
}

void Kernel::run_loop(Time limit) {
    stop_requested_ = false;
    for (;;) {
        while (crunch()) {
            if (stop_requested_) {
                return;
            }
        }
        if (stop_requested_) {
            return;
        }
        // Advance to the earliest *fresh* timed notification.
        Time next = Time::max();
        bool found = false;
        for (auto it = timed_.begin(); it != timed_.end();) {
            Event* e = it->second.first;
            if (e->pending_ == Event::Pending::timed && e->seq_ == it->second.second) {
                next = it->first;
                found = true;
                break;
            }
            it = timed_.erase(it);  // stale entry
        }
        if (!found || next > limit) {
            return;
        }
        advance_to(next);
    }
}

void Kernel::run() {
    run_loop(Time::max());
}

void Kernel::run_until(Time t) {
    if (t < now_) {
        report(Severity::fatal, "kernel", "run_until() into the past");
    }
    run_loop(t);
    if (!stop_requested_ && t != Time::max()) {
        now_ = t;  // step semantics: the clock always reaches the step end
    }
}

void Kernel::run_for(Time d) {
    run_until(now_ + d);
}

bool Kernel::step_delta() {
    return crunch();
}

}  // namespace rtk::sysc
