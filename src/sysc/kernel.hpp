// rtk::sysc::Kernel -- the discrete-event simulation kernel.
//
// Implements the SystemC scheduler semantics the reproduced paper relies
// on: evaluate -> update -> delta-notification cycles, timed notification
// queue, deterministic FIFO ordering of runnable processes, and stepped
// execution (run_until / run_for) used for the paper's "step mode".
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sysc/event.hpp"
#include "sysc/process.hpp"
#include "sysc/stack_pool.hpp"
#include "sysc/time.hpp"

namespace rtk::sysc {

/// Implemented by primitive channels (signals) that need an update phase.
class UpdateListener {
public:
    virtual ~UpdateListener() = default;
    virtual void perform_update() = 0;
};

class Kernel {
public:
    Kernel();
    ~Kernel();

    Kernel(const Kernel&) = delete;
    Kernel& operator=(const Kernel&) = delete;

    /// The kernel context of the calling thread. While a kernel executes
    /// (run()/run_until()/step_delta()/spawn()/teardown) it is bound here,
    /// so model code running inside the simulation always resolves to the
    /// kernel that is driving it -- even with several kernels alive on one
    /// thread. Outside execution this is the most recently constructed
    /// live kernel of the thread (construction-nesting order). Kernels are
    /// strictly thread-local: other threads' kernels are never visible.
    ///
    /// Prefer passing the kernel explicitly (every layer above sysc takes
    /// a Kernel& now); this ambient accessor exists for code executing
    /// inside simulation processes, where the context is unambiguous.
    static Kernel& current();
    static Kernel* current_or_null();

    /// RAII binding of a kernel as the thread's execution context; used
    /// internally around every entry into the simulation and available to
    /// harnesses that call ambient-context code outside a run.
    class Bind {
    public:
        explicit Bind(Kernel& k);
        ~Bind();
        Bind(const Bind&) = delete;
        Bind& operator=(const Bind&) = delete;

    private:
        Kernel* prev_;
    };

    /// Create a new simulation process; it becomes runnable immediately.
    Process& spawn(std::string name, std::function<void()> body,
                   SpawnOptions opts = {});

    /// Run until no activity remains (or stop() is called).
    void run();

    /// Run all activity with timestamp <= t, then set now() == t.
    void run_until(Time t);

    /// Run for a further duration d (run_until(now() + d)).
    void run_for(Time d);

    /// Execute a single delta cycle; returns true if any process ran.
    bool step_delta();

    /// Request the run loop to return after the current delta cycle.
    void stop() { stop_requested_ = true; }

    /// Livelock guard: allow at most `n` further delta cycles across all
    /// subsequent run()/run_until()/run_for() calls (0 disables the
    /// budget). When the budget runs out the run loop returns without
    /// advancing the clock to the step end, delta_budget_exhausted()
    /// turns true, and later run calls return immediately -- so a
    /// harness can classify the simulation as hung instead of spinning.
    void set_delta_budget(std::uint64_t n) {
        delta_budget_ = n;
        delta_budget_exhausted_ = false;
    }
    bool delta_budget_exhausted() const { return delta_budget_exhausted_; }

    /// Monotonic simulated time. Also the timestamp source for every
    /// observer event, which `trace::Recorder` delta-encodes into
    /// `.rtktrace` captures — it never goes backwards within a run.
    Time now() const { return now_; }
    /// Total delta cycles executed; stamped into the trace footer as a
    /// cheap whole-run progress fingerprint.
    std::uint64_t delta_count() const { return delta_count_; }
    Process* running_process() const { return current_process_; }
    std::size_t process_count() const { return processes_.size(); }

    /// True when no runnable process, no pending delta/timed notification.
    bool idle() const;

    /// Time of the earliest pending timed notification, or Time::max().
    Time next_activity_at() const;

    /// Find a process by name (nullptr if absent); for debug tooling.
    Process* find_process(const std::string& name) const;
    std::vector<Process*> processes() const;

    /// Register a primitive channel for the current update phase.
    void request_update(UpdateListener& listener);

    /// Hook invoked after every completed delta cycle (trace writers).
    void add_timestep_hook(std::function<void(Time)> hook);

    /// Recycling allocator for process coroutine stacks; every process
    /// spawned on this kernel borrows its stack here.
    StackPool& stack_pool() { return stack_pool_; }

    // ---- internal interface for Event / Process / wait() ----
    void schedule_delta(Event& e);
    void schedule_timed(Event& e, Time at);
    void forget_event(Event& e);
    void make_runnable(Process& p, Event* cause);
    void do_wait(const std::vector<Event*>& events);
    void kill_process(Process& p);

private:
    /// One slot of the indexed binary min-heap holding timed
    /// notifications, ordered by (at, order) -- `order` reproduces the
    /// deterministic FIFO among equal timestamps. Each Event owns at most
    /// one slot and tracks it in Event::timed_index_, so rescheduling
    /// repositions in place and ~Event removes its entry in O(log n).
    struct TimedEntry {
        Time at;
        std::uint64_t order;
        Event* event;
    };

    void run_loop(Time limit);
    bool crunch();  ///< one evaluate+update+delta-notify cycle
    void run_process(Process& p);
    void advance_to(Time t);

    // ---- timed-heap plumbing (operates on the mutable timed_) ----
    static bool timed_before(const TimedEntry& a, const TimedEntry& b);
    void timed_set_index(std::size_t i) const;
    void timed_sift_up(std::size_t i) const;
    void timed_sift_down(std::size_t i) const;
    void timed_erase_at(std::size_t i) const;
    /// Drop stale top entries (cancelled / superseded notifications) and
    /// return the earliest fresh one, or nullptr. Logically const: stale
    /// entries are invisible to all observers.
    const TimedEntry* first_fresh_timed() const;

    Time now_{};
    std::uint64_t delta_count_ = 0;
    std::uint64_t next_process_id_ = 1;
    std::uint64_t timed_order_ = 0;
    bool stop_requested_ = false;
    std::uint64_t delta_budget_ = 0;  ///< remaining deltas; 0 = unlimited
    bool delta_budget_exhausted_ = false;

    /// Declared before processes_: dying processes hand their coroutine
    /// stacks back to the pool, so it must outlive them.
    StackPool stack_pool_;
    std::vector<std::unique_ptr<Process>> processes_;
    std::deque<Process*> runnable_;
    std::vector<Event*> delta_queue_;
    mutable std::vector<TimedEntry> timed_;  ///< indexed binary min-heap
    std::vector<UpdateListener*> update_queue_;
    std::vector<std::function<void(Time)>> timestep_hooks_;

    Process* current_process_ = nullptr;
    /// Next-older link in the owning thread's construction-nesting chain
    /// (see current()); unlinked order-independently on destruction.
    Kernel* chain_prev_ = nullptr;
};

}  // namespace rtk::sysc
