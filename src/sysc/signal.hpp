// rtk::sysc::Signal<T> -- sc_signal analogue: a primitive channel with
// evaluate/update semantics. Writes take effect in the update phase of the
// current delta cycle; value_changed_event() is a delta notification, so
// readers observe the new value one delta later, exactly as in SystemC.
#pragma once

#include <concepts>
#include <cstdint>
#include <string>
#include <type_traits>

#include "sysc/event.hpp"
#include "sysc/kernel.hpp"

namespace rtk::sysc {

template <typename T>
class Signal : public UpdateListener {
    static_assert(std::is_copy_assignable_v<T>, "signal payload must be copyable");

public:
    explicit Signal(std::string name, T init = T{})
        : Signal(Kernel::current(), std::move(name), init) {}

    /// Context-explicit form: binds the signal (and its edge events) to
    /// `kernel` regardless of what is currently active on this thread.
    Signal(Kernel& kernel, std::string name, T init = T{})
        : kernel_(&kernel),
          name_(std::move(name)),
          cur_(init),
          next_(init),
          changed_(kernel, name_ + ".changed"),
          posedge_(kernel, name_ + ".pos"),
          negedge_(kernel, name_ + ".neg") {}

    Signal(const Signal&) = delete;
    Signal& operator=(const Signal&) = delete;

    const T& read() const { return cur_; }
    operator const T&() const { return cur_; }

    /// Schedule `v` to become the signal value in the update phase.
    /// Last write in an evaluation phase wins (SystemC semantics).
    void write(const T& v) {
        next_ = v;
        if (!update_requested_) {
            update_requested_ = true;
            kernel_->request_update(*this);
        }
    }

    Signal& operator=(const T& v) {
        write(v);
        return *this;
    }

    Event& value_changed_event() { return changed_; }
    Event& posedge_event() requires std::same_as<T, bool> { return posedge_; }
    Event& negedge_event() requires std::same_as<T, bool> { return negedge_; }

    const std::string& name() const { return name_; }
    Time last_change() const { return last_change_; }
    std::uint64_t change_count() const { return change_count_; }

    void perform_update() override {
        update_requested_ = false;
        if (next_ == cur_) {
            return;
        }
        const T old = cur_;
        cur_ = next_;
        last_change_ = kernel_->now();
        ++change_count_;
        changed_.notify_delta();
        if constexpr (std::same_as<T, bool>) {
            if (!old && cur_) {
                posedge_.notify_delta();
            } else if (old && !cur_) {
                negedge_.notify_delta();
            }
        }
    }

private:
    Kernel* kernel_;
    std::string name_;
    T cur_;
    T next_;
    bool update_requested_ = false;
    Time last_change_{};
    std::uint64_t change_count_ = 0;
    Event changed_;
    Event posedge_;
    Event negedge_;
};

}  // namespace rtk::sysc
