#include "sysc/process.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "sysc/kernel.hpp"
#include "sysc/report.hpp"

namespace rtk::sysc {

Process::Process(Kernel& kernel, std::string name, std::function<void()> body,
                 std::size_t stack_bytes, std::uint64_t id)
    : kernel_(kernel),
      name_(std::move(name)),
      id_(id),
      coro_(std::move(body), stack_bytes, &kernel.stack_pool()),
      timeout_ev_(name_ + ".timeout"),
      terminated_ev_(name_ + ".terminated") {}

void Process::kill() {
    kernel_.kill_process(*this);
}

// ---- wait API --------------------------------------------------------------

namespace {

Process& require_current_process() {
    Kernel& k = Kernel::current();
    Process* p = k.running_process();
    if (p == nullptr) {
        report(Severity::fatal, "wait", "wait() called outside a simulation process");
    }
    return *p;
}

}  // namespace

void wait(Event& e) {
    Kernel::current().do_wait({&e});
}

void wait(Time d) {
    Process& p = require_current_process();
    p.timeout_ev_.notify(d.is_zero() ? Time::zero() : d);
    Kernel::current().do_wait({&p.timeout_ev_});
}

bool wait(Time d, Event& e) {
    Process& p = require_current_process();
    p.timeout_ev_.notify(d);
    Kernel::current().do_wait({&p.timeout_ev_, &e});
    const bool got_event = (p.triggered_by_ == &e);
    if (got_event) {
        p.timeout_ev_.cancel();
    }
    return got_event;
}

std::size_t wait_any(const std::vector<Event*>& events) {
    Process& p = require_current_process();
    Kernel::current().do_wait(events);
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i] == p.triggered_by_) {
            return i;
        }
    }
    report(Severity::fatal, "wait", "wait_any(): triggering event not in the wait set");
    return events.size();
}

std::size_t wait_any(Time d, const std::vector<Event*>& events) {
    Process& p = require_current_process();
    p.timeout_ev_.notify(d);
    std::vector<Event*> set = events;
    set.push_back(&p.timeout_ev_);
    Kernel::current().do_wait(set);
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i] == p.triggered_by_) {
            p.timeout_ev_.cancel();
            return i;
        }
    }
    return events.size();  // timeout
}

void wait_delta() {
    Process& p = require_current_process();
    p.timeout_ev_.notify_delta();
    Kernel::current().do_wait({&p.timeout_ev_});
}

Time now() {
    return Kernel::current().now();
}

Process& current_process() {
    return require_current_process();
}

}  // namespace rtk::sysc
