// Crash-safe host filesystem helpers shared by every artifact writer in
// the tree (batch/campaign reports, fuzz/fault repro dumps, .rtktrace
// captures, campaign manifests).
//
// The core primitive is write-via-temp-then-rename: the payload lands in
// `<path>.tmp.<pid>` first and is moved over `path` only after the
// stream state has been checked, so a process killed mid-write never
// leaves a torn artifact where a restart expects a complete one -- the
// old file (if any) survives intact, or no file exists at all.
#pragma once

#include <string>
#include <string_view>

namespace rtk::sysc {

/// Atomically replace `path` with `bytes` (binary-exact). Writes a
/// sibling temp file, verifies the stream, then std::rename()s it into
/// place; on any failure the temp file is removed, `*error` (when given)
/// receives a description and `path` is left untouched. With `durable`
/// the payload is fsync'd to stable storage before the rename (and the
/// parent directory after it, best effort) -- use it for checkpoints a
/// crashed process must find again, skip it for throwaway reports.
bool write_file_atomic(const std::string& path, std::string_view bytes,
                       std::string* error = nullptr, bool durable = false);

/// fsync a directory so a just-renamed entry inside it survives power
/// loss. Best effort: returns false when the platform or filesystem
/// refuses, which callers may ignore.
bool sync_directory(const std::string& dir);

/// The directory component of `path` ("." when there is none).
std::string parent_directory(const std::string& path);

}  // namespace rtk::sysc
