#include "sysc/report.hpp"

#include <cstdio>
#include <utility>

namespace rtk::sysc {

namespace {

void default_handler(Severity sev, std::string_view id, std::string_view msg) {
    if (sev == Severity::info) {
        return;  // quiet by default; tests/tools opt in
    }
    std::fprintf(stderr, "[rtk-%s] %.*s: %.*s\n", to_string(sev),
                 static_cast<int>(id.size()), id.data(),
                 static_cast<int>(msg.size()), msg.data());
}

ReportHandler& handler_slot() {
    // Thread-local so concurrent simulations (one kernel stack per worker
    // thread) neither race on the slot nor capture each other's reports;
    // a handler installed by a test only sees its own thread's kernels.
    thread_local ReportHandler handler = default_handler;
    return handler;
}

}  // namespace

ReportHandler set_report_handler(ReportHandler handler) {
    auto prev = std::move(handler_slot());
    handler_slot() = handler ? std::move(handler) : ReportHandler{default_handler};
    return prev;
}

void report(Severity sev, std::string_view id, std::string_view msg) {
    handler_slot()(sev, id, msg);
    if (sev == Severity::fatal) {
        throw SimError(std::string(id) + ": " + std::string(msg));
    }
}

const char* to_string(Severity sev) {
    switch (sev) {
        case Severity::info: return "info";
        case Severity::warning: return "warning";
        case Severity::error: return "error";
        case Severity::fatal: return "fatal";
    }
    return "?";
}

}  // namespace rtk::sysc
