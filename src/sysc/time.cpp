#include "sysc/time.hpp"

#include <cstdint>

namespace rtk::sysc {

std::string Time::to_string() const {
    struct Unit {
        std::uint64_t scale;
        const char* suffix;
    };
    static constexpr Unit units[] = {
        {1'000'000'000'000ull, " s"},
        {1'000'000'000ull, " ms"},
        {1'000'000ull, " us"},
        {1'000ull, " ns"},
    };
    for (const auto& u : units) {
        if (ps_ != 0 && ps_ % u.scale == 0) {
            return std::to_string(ps_ / u.scale) + u.suffix;
        }
    }
    return std::to_string(ps_) + " ps";
}

}  // namespace rtk::sysc
