// rtk::sysc::Event -- sc_event analogue with immediate, delta and timed
// notification and SystemC's "earliest notification wins" override rule.
//
// Lifetime contract: an Event belongs to the Kernel that is current at its
// construction and must not outlive it (the usual structure -- kernel
// first, modules owning events inside -- satisfies this naturally).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sysc/time.hpp"

namespace rtk::sysc {

class Kernel;
class Process;

class Event {
public:
    /// Binds to the currently active Kernel (fatal if none).
    explicit Event(std::string name = {});
    /// Context-explicit form: binds to `kernel` regardless of what is
    /// currently active on this thread.
    explicit Event(Kernel& kernel, std::string name = {});
    ~Event();

    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    /// Immediate notification: waiting processes become runnable within
    /// the current evaluation phase. Cancels any pending notification
    /// (immediate is the earliest possible time).
    void notify();

    /// Delta notification: waiting processes wake in the next delta cycle.
    void notify_delta();

    /// Timed notification after `delay`; a zero delay degenerates to a
    /// delta notification. Per IEEE 1666, if a notification is already
    /// pending only the earlier of the two survives.
    void notify(Time delay);

    /// Cancel a pending delta/timed notification (immediate cannot be
    /// cancelled -- it has already happened).
    void cancel();

    const std::string& name() const { return name_; }
    bool has_waiters() const { return !waiters_.empty(); }
    std::size_t waiter_count() const { return waiters_.size(); }

    enum class Pending : std::uint8_t { none, delta, timed };
    Pending pending() const { return pending_; }
    /// Absolute time of the pending timed notification (valid when
    /// pending() == Pending::timed).
    Time pending_at() const { return pending_at_; }

private:
    friend class Kernel;
    friend class Process;

    /// Wake every waiting process (used by the kernel at trigger time).
    void trigger();

    /// "Not in the kernel's timed heap" sentinel for timed_index_.
    static constexpr std::size_t timed_npos = static_cast<std::size_t>(-1);

    Kernel* kernel_;
    std::string name_;
    std::vector<Process*> waiters_;
    Pending pending_ = Pending::none;
    Time pending_at_{};
    // Kernel-owned O(1) membership bookkeeping: slot in the kernel's
    // indexed timed-event heap (timed_npos when absent; an event has at
    // most one heap entry, repositioned in place on re-notification), and
    // whether the event is queued for the current delta-notify phase.
    std::size_t timed_index_ = timed_npos;
    bool in_delta_queue_ = false;
};

}  // namespace rtk::sysc
