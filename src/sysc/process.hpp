// rtk::sysc::Process -- SC_THREAD analogue: a named stackful-coroutine
// simulation process with dynamic sensitivity.
//
// Processes are created through Kernel::spawn() and owned by the kernel.
// The T-THREAD model of the reproduced paper (src/sim/tthread.hpp) wraps
// exactly one Process.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sysc/coroutine.hpp"
#include "sysc/event.hpp"
#include "sysc/time.hpp"

namespace rtk::sysc {

class Kernel;

class Process {
public:
    enum class State : std::uint8_t {
        created,     ///< spawned, body not yet entered
        runnable,    ///< queued for execution in the current/next evaluate phase
        running,     ///< currently executing on its coroutine stack
        waiting,     ///< blocked on one or more events
        terminated,  ///< body returned or process killed
    };

    const std::string& name() const { return name_; }
    std::uint64_t id() const { return id_; }
    State state() const { return state_; }
    bool terminated() const { return state_ == State::terminated; }

    /// Notified (delta) when the process terminates.
    Event& terminated_event() { return terminated_ev_; }

    /// Asynchronously kill the process: its stack unwinds with RAII intact
    /// the moment it would next run (immediately if suspended).
    void kill();

    Process(const Process&) = delete;
    Process& operator=(const Process&) = delete;

private:
    friend class Kernel;
    friend class Event;
    friend void wait(Time);
    friend bool wait(Time, Event&);
    friend std::size_t wait_any(const std::vector<Event*>&);
    friend std::size_t wait_any(Time, const std::vector<Event*>&);
    friend void wait_delta();

    Process(Kernel& kernel, std::string name, std::function<void()> body,
            std::size_t stack_bytes, std::uint64_t id);

    Kernel& kernel_;
    std::string name_;
    std::uint64_t id_;
    Coroutine coro_;
    State state_ = State::created;
    bool in_runnable_ = false;  ///< queued in the kernel's evaluate queue
    std::vector<Event*> waiting_on_;
    Event* triggered_by_ = nullptr;
    Event timeout_ev_;     ///< private event backing timed waits
    Event terminated_ev_;
};

/// Options for Kernel::spawn.
struct SpawnOptions {
    std::size_t stack_bytes = Coroutine::default_stack_bytes;
};

// ---- wait API (valid only inside a process) -------------------------------

/// Suspend until `e` is notified.
void wait(Event& e);

/// Suspend for a simulated duration.
void wait(Time d);

/// Suspend until `e` or until `d` elapses; returns true if the event fired
/// before the timeout.
bool wait(Time d, Event& e);

/// Suspend until any of `events` fires; returns the index of the winner.
std::size_t wait_any(const std::vector<Event*>& events);

/// As wait_any but bounded by a timeout; returns the index of the event
/// that fired, or events.size() on timeout.
std::size_t wait_any(Time d, const std::vector<Event*>& events);

/// Suspend for one delta cycle (SystemC wait(SC_ZERO_TIME)).
void wait_delta();

/// Current simulation time of the active kernel.
Time now();

/// The process currently executing (fatal if called outside a process).
Process& current_process();

}  // namespace rtk::sysc
