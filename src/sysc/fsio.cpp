#include "sysc/fsio.hpp"

#include <cstdio>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

namespace rtk::sysc {

namespace {

bool fail(std::string* error, const std::string& what) {
    if (error != nullptr) {
        *error = what;
    }
    return false;
}

/// fsync an already-written file by path. Separate open instead of
/// threading a descriptor through std::ofstream keeps the writer
/// portable C++ and the durability hook POSIX-local.
bool sync_file(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        return false;
    }
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

}  // namespace

std::string parent_directory(const std::string& path) {
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos) {
        return ".";
    }
    if (slash == 0) {
        return "/";
    }
    return path.substr(0, slash);
}

bool sync_directory(const std::string& dir) {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) {
        return false;
    }
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

bool write_file_atomic(const std::string& path, std::string_view bytes,
                       std::string* error, bool durable) {
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            return fail(error, "cannot open " + tmp + " for writing");
        }
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            return fail(error, "short write to " + tmp);
        }
    }
    if (durable && !sync_file(tmp)) {
        std::remove(tmp.c_str());
        return fail(error, "cannot fsync " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return fail(error, "cannot rename " + tmp + " over " + path);
    }
    if (durable) {
        sync_directory(parent_directory(path));  // best effort
    }
    return true;
}

}  // namespace rtk::sysc
