// VCD waveform tracing (sc_trace analogue).
//
// The paper's case study probes BFM signals in a waveform viewer (Fig 4);
// TraceFile regenerates that capability by sampling registered signals
// after every delta cycle and writing a standard Value-Change-Dump file
// any waveform viewer (gtkwave etc.) can load.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "sysc/signal.hpp"
#include "sysc/time.hpp"

namespace rtk::sysc {

class TraceFile {
public:
    /// Creates/truncates `path`; timescale fixes the VCD time unit.
    /// Samples after every delta cycle of the currently active kernel.
    explicit TraceFile(std::string path, Time timescale = Time::ns(1));
    /// Context-explicit form: samples the delta cycles of `kernel`.
    TraceFile(Kernel& kernel, std::string path, Time timescale = Time::ns(1));
    ~TraceFile();

    TraceFile(const TraceFile&) = delete;
    TraceFile& operator=(const TraceFile&) = delete;

    /// Register an integral-valued signal under `name` (defaults to the
    /// signal's own name). Must be called before the first delta cycle
    /// that should appear in the dump.
    template <typename T>
    void trace(Signal<T>& sig, std::string name = {}, unsigned width = 8 * sizeof(T)) {
        static_assert(std::is_integral_v<T>, "only integral signals are traceable");
        if constexpr (std::is_same_v<T, bool>) {
            width = 1;
        }
        add_channel(name.empty() ? sig.name() : std::move(name), width,
                    [&sig] { return static_cast<std::uint64_t>(sig.read()); });
    }

    /// Register an arbitrary sampled value (probing a plain variable, as
    /// the paper's debugger widgets do).
    void trace_value(std::string name, unsigned width,
                     std::function<std::uint64_t()> sample) {
        add_channel(std::move(name), width, std::move(sample));
    }

    /// Force a sample at the current time (normally automatic per delta).
    void sample_now();

    void flush();
    std::uint64_t value_changes_written() const { return changes_written_; }
    const std::string& path() const { return path_; }

private:
    struct Channel {
        std::string name;
        unsigned width;
        std::function<std::uint64_t()> sample;
        std::string code;
        std::uint64_t last = 0;
        bool dumped = false;
    };

    void add_channel(std::string name, unsigned width,
                     std::function<std::uint64_t()> sample);
    void write_header();
    void on_timestep(Time t);
    void emit(const Channel& c, std::uint64_t v);
    static std::string id_code(std::size_t index);

    Kernel* kernel_;
    std::string path_;
    std::ofstream out_;
    Time timescale_;
    bool header_written_ = false;
    std::uint64_t last_stamp_ = std::uint64_t(-1);
    std::uint64_t changes_written_ = 0;
    std::vector<Channel> channels_;
};

}  // namespace rtk::sysc
