#include "sysc/event.hpp"

#include <algorithm>

#include "sysc/kernel.hpp"
#include "sysc/process.hpp"
#include "sysc/report.hpp"

namespace rtk::sysc {

Event::Event(std::string name) : kernel_(&Kernel::current()), name_(std::move(name)) {}

Event::Event(Kernel& kernel, std::string name)
    : kernel_(&kernel), name_(std::move(name)) {}

Event::~Event() {
    if (!waiters_.empty()) {
        report(Severity::warning, "event",
               "event '" + name_ + "' destroyed while " +
                   std::to_string(waiters_.size()) + " process(es) wait on it");
        for (Process* p : waiters_) {
            auto& wl = p->waiting_on_;
            wl.erase(std::remove(wl.begin(), wl.end(), this), wl.end());
        }
        waiters_.clear();
    }
    kernel_->forget_event(*this);
}

void Event::notify() {
    cancel();  // immediate is the earliest notification; it wins
    trigger();
}

void Event::notify_delta() {
    if (pending_ == Pending::delta) {
        return;  // already pending at the earliest schedulable point
    }
    cancel();
    pending_ = Pending::delta;
    kernel_->schedule_delta(*this);
}

void Event::notify(Time delay) {
    if (delay.is_zero()) {
        notify_delta();
        return;
    }
    const Time at = kernel_->now() + delay;
    if (pending_ == Pending::delta) {
        return;  // pending delta is earlier than any timed notification
    }
    if (pending_ == Pending::timed && pending_at_ <= at) {
        return;  // earlier pending timed notification survives
    }
    cancel();
    pending_ = Pending::timed;
    pending_at_ = at;
    kernel_->schedule_timed(*this, at);
}

void Event::cancel() {
    // Lazy cancellation: clearing pending_ marks any queued kernel entry
    // (delta slot or timed-heap slot) stale; the kernel drops it when it
    // surfaces, or reuses the timed slot on the next notify(Time).
    pending_ = Pending::none;
}

void Event::trigger() {
    pending_ = Pending::none;
    // Move out first: waking a process deregisters it from all events it
    // waits on, mutating waiters_ of *other* events, not this local copy.
    std::vector<Process*> woken;
    woken.swap(waiters_);
    for (Process* p : woken) {
        kernel_->make_runnable(*p, this);
    }
}

}  // namespace rtk::sysc
