// rtk::sysc::Clock -- free-running clock source (sc_clock analogue).
// Drives a Signal<bool>; the paper's BFM real-time clock and the kernel
// system tick are built from this.
#pragma once

#include <cstdint>
#include <string>

#include "sysc/signal.hpp"
#include "sysc/time.hpp"

namespace rtk::sysc {

class Process;

class Clock {
public:
    /// duty_percent is the high fraction in percent (1..99).
    Clock(std::string name, Time period, unsigned duty_percent = 50,
          Time start_delay = Time::zero());
    /// Context-explicit form: generator process and signal live on `kernel`.
    Clock(Kernel& kernel, std::string name, Time period, unsigned duty_percent = 50,
          Time start_delay = Time::zero());
    ~Clock();

    Clock(const Clock&) = delete;
    Clock& operator=(const Clock&) = delete;

    bool read() const { return sig_.read(); }
    Signal<bool>& signal() { return sig_; }
    Event& posedge_event() { return sig_.posedge_event(); }
    Event& negedge_event() { return sig_.negedge_event(); }

    Time period() const { return period_; }
    std::uint64_t posedge_count() const { return posedge_count_; }

private:
    std::string name_;
    Time period_;
    Time high_time_;
    Time low_time_;
    Time start_delay_;
    Signal<bool> sig_;
    std::uint64_t posedge_count_ = 0;
    Process* proc_ = nullptr;
};

}  // namespace rtk::sysc
