#include "sysc/trace.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "sysc/kernel.hpp"
#include "sysc/report.hpp"

namespace rtk::sysc {

TraceFile::TraceFile(std::string path, Time timescale)
    : TraceFile(Kernel::current(), std::move(path), timescale) {}

TraceFile::TraceFile(Kernel& kernel, std::string path, Time timescale)
    : kernel_(&kernel), path_(std::move(path)), out_(path_), timescale_(timescale) {
    if (!out_) {
        report(Severity::fatal, "trace", "cannot open VCD file '" + path_ + "'");
    }
    kernel.add_timestep_hook([this](Time t) { on_timestep(t); });
}

TraceFile::~TraceFile() {
    flush();
}

std::string TraceFile::id_code(std::size_t index) {
    // Printable VCD identifier characters: '!' (33) .. '~' (126).
    std::string code;
    do {
        code.push_back(static_cast<char>(33 + index % 94));
        index /= 94;
    } while (index != 0);
    return code;
}

void TraceFile::add_channel(std::string name, unsigned width,
                            std::function<std::uint64_t()> sample) {
    if (header_written_) {
        report(Severity::fatal, "trace",
               "signal '" + name + "' registered after tracing started");
    }
    Channel c;
    c.name = std::move(name);
    c.width = width == 0 ? 1 : width;
    c.sample = std::move(sample);
    c.code = id_code(channels_.size());
    channels_.push_back(std::move(c));
}

void TraceFile::write_header() {
    out_ << "$timescale " << timescale_.to_string() << " $end\n";
    out_ << "$scope module rtk $end\n";
    for (const auto& c : channels_) {
        out_ << "$var wire " << c.width << " " << c.code << " " << c.name << " $end\n";
    }
    out_ << "$upscope $end\n$enddefinitions $end\n";
    header_written_ = true;
}

void TraceFile::emit(const Channel& c, std::uint64_t v) {
    if (c.width == 1) {
        out_ << (v ? '1' : '0') << c.code << '\n';
    } else {
        out_ << 'b';
        bool significant = false;
        for (int bit = static_cast<int>(c.width) - 1; bit >= 0; --bit) {
            const bool set = (v >> bit) & 1u;
            if (set) {
                significant = true;
            }
            if (significant || bit == 0) {
                out_ << (set ? '1' : '0');
            }
        }
        out_ << ' ' << c.code << '\n';
    }
    ++changes_written_;
}

void TraceFile::on_timestep(Time t) {
    if (!header_written_) {
        write_header();
    }
    const std::uint64_t stamp = t.picoseconds() / std::max<std::uint64_t>(1, timescale_.picoseconds());
    bool stamp_emitted = false;
    for (auto& c : channels_) {
        const std::uint64_t v = c.sample();
        if (c.dumped && v == c.last) {
            continue;
        }
        if (!stamp_emitted && stamp != last_stamp_) {
            out_ << '#' << stamp << '\n';
            last_stamp_ = stamp;
            stamp_emitted = true;
        }
        emit(c, v);
        c.last = v;
        c.dumped = true;
    }
}

void TraceFile::sample_now() {
    on_timestep(kernel_->now());
}

void TraceFile::flush() {
    out_.flush();
}

}  // namespace rtk::sysc
