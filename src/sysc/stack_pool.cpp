#include "sysc/stack_pool.hpp"

// A recycled stack may carry stale ASan shadow state from the frames of
// the coroutine that died on it (poisoned redzones survive a non-local
// exit); unpoison the whole region before the next coroutine runs there.
#if defined(__SANITIZE_ADDRESS__)
#define RTK_STACKPOOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RTK_STACKPOOL_ASAN 1
#endif
#endif

#ifdef RTK_STACKPOOL_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace rtk::sysc {

namespace {

inline void unpoison(const StackPool::Stack& s) {
#ifdef RTK_STACKPOOL_ASAN
    __asan_unpoison_memory_region(s.base, s.bytes);
#else
    (void)s;
#endif
}

}  // namespace

StackPool::~StackPool() {
    for (const Stack& s : free_) {
        delete[] s.base;
    }
}

StackPool::Stack StackPool::acquire(std::size_t bytes) {
    ++acquires_;
    // LIFO scan for an exact-geometry match: the common case (all stacks
    // share the default size) hits on the last element.
    for (std::size_t i = free_.size(); i > 0; --i) {
        if (free_[i - 1].bytes == bytes) {
            Stack s = free_[i - 1];
            free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i - 1));
            ++reuses_;
            return s;
        }
    }
    return Stack{new char[bytes], bytes};
}

void StackPool::release(Stack s) {
    if (s.base == nullptr) {
        return;
    }
    if (free_.size() >= max_cached_) {
        delete[] s.base;
        return;
    }
    unpoison(s);
    free_.push_back(s);
}

std::size_t StackPool::cached_bytes() const {
    std::size_t n = 0;
    for (const Stack& s : free_) {
        n += s.bytes;
    }
    return n;
}

void StackPool::set_max_cached(std::size_t n) {
    max_cached_ = n;
    while (free_.size() > max_cached_) {
        delete[] free_.back().base;
        free_.pop_back();
    }
}

}  // namespace rtk::sysc
