#include "sysc/clock.hpp"

#include "sysc/kernel.hpp"
#include "sysc/process.hpp"
#include "sysc/report.hpp"

namespace rtk::sysc {

Clock::~Clock() {
    proc_->kill();  // the generator references this object
}

Clock::Clock(std::string name, Time period, unsigned duty_percent, Time start_delay)
    : Clock(Kernel::current(), std::move(name), period, duty_percent, start_delay) {}

Clock::Clock(Kernel& kernel, std::string name, Time period, unsigned duty_percent,
             Time start_delay)
    : name_(std::move(name)),
      period_(period),
      start_delay_(start_delay),
      sig_(kernel, name_) {
    if (period.is_zero()) {
        report(Severity::fatal, "clock", "clock '" + name_ + "' with zero period");
    }
    if (duty_percent == 0 || duty_percent >= 100) {
        report(Severity::fatal, "clock", "clock '" + name_ + "' duty cycle out of range");
    }
    high_time_ = period * duty_percent / 100;
    low_time_ = period - high_time_;
    proc_ = &kernel.spawn(name_ + ".gen", [this] {
        if (!start_delay_.is_zero()) {
            wait(start_delay_);
        }
        for (;;) {
            sig_.write(true);
            ++posedge_count_;
            wait(high_time_);
            sig_.write(false);
            wait(low_time_);
        }
    });
}

}  // namespace rtk::sysc
