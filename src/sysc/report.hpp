// Diagnostic reporting for the simulation library (sc_report analogue).
//
// One handler per thread receives (severity, id, message) -- thread-local
// so concurrent simulations on worker threads are isolated. The default
// handler writes to stderr; `fatal` additionally throws SimError so
// misuse is never silent. Tests install capturing handlers.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace rtk::sysc {

enum class Severity { info, warning, error, fatal };

/// Thrown by fatal reports and by kernel-detected misuse.
class SimError : public std::runtime_error {
public:
    explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

using ReportHandler =
    std::function<void(Severity, std::string_view id, std::string_view msg)>;

/// Replace the calling thread's report handler; returns the previous one.
ReportHandler set_report_handler(ReportHandler handler);

/// Emit a report. Severity::fatal throws SimError after the handler runs.
void report(Severity sev, std::string_view id, std::string_view msg);

const char* to_string(Severity sev);

}  // namespace rtk::sysc
