// Diagnostic reporting for the simulation library (sc_report analogue).
//
// A single process-wide handler receives (severity, id, message). The
// default handler writes to stderr; `fatal` additionally throws SimError
// so misuse is never silent. Tests install capturing handlers.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace rtk::sysc {

enum class Severity { info, warning, error, fatal };

/// Thrown by fatal reports and by kernel-detected misuse.
class SimError : public std::runtime_error {
public:
    explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

using ReportHandler =
    std::function<void(Severity, std::string_view id, std::string_view msg)>;

/// Replace the process-wide report handler; returns the previous one.
ReportHandler set_report_handler(ReportHandler handler);

/// Emit a report. Severity::fatal throws SimError after the handler runs.
void report(Severity sev, std::string_view id, std::string_view msg);

const char* to_string(Severity sev);

}  // namespace rtk::sysc
