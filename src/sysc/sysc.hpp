// Umbrella header for the rtk::sysc simulation substrate.
//
// rtk::sysc is a from-scratch SystemC-like discrete-event kernel providing
// exactly the primitives the DATE'05 RTK-Spec TRON paper builds on:
// SC_THREAD-style stackful processes, events with dynamic sensitivity
// (immediate / delta / timed notification), delta cycles with an update
// phase, signals, clocks and VCD tracing.
#pragma once

#include "sysc/clock.hpp"
#include "sysc/coroutine.hpp"
#include "sysc/event.hpp"
#include "sysc/kernel.hpp"
#include "sysc/process.hpp"
#include "sysc/report.hpp"
#include "sysc/signal.hpp"
#include "sysc/time.hpp"
#include "sysc/trace.hpp"
