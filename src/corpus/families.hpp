// Workload family generators: each emits a structured ScenarioFile --
// object graph, behaviour programs, bindings and rate checks -- from a
// (family, size, seed) triple, deterministically (same triple, same
// bytes). Families model the classic RTOS workload shapes: pipeline
// (semaphore-chained stages), fork/join (dispatch/barrier), priority
// ladder (rate-monotonic rungs) and producer/consumer (mailbox mesh).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/scenario_file.hpp"

namespace rtk::corpus {

struct FamilyParams {
    int size = 4;  ///< family-specific scale knob (stages, workers, rungs)
    std::uint64_t seed = 1;
};

ScenarioFile generate_pipeline(const FamilyParams& p);
ScenarioFile generate_fork_join(const FamilyParams& p);
ScenarioFile generate_priority_ladder(const FamilyParams& p);
ScenarioFile generate_producer_consumer(const FamilyParams& p);

/// Registered family names, in catalogue order.
const std::vector<std::string>& family_names();

/// Dispatch by name; returns false for an unknown family.
bool generate_family(const std::string& family, const FamilyParams& p,
                     ScenarioFile& out);

}  // namespace rtk::corpus
