#include "corpus/ops.hpp"

#include <utility>

namespace rtk::corpus {

using api::Json;

namespace {
struct OpName {
    OpKind kind;
    const char* name;
};
constexpr OpName op_names[] = {
    {OpKind::compute, "compute"},     {OpKind::delay, "delay"},
    {OpKind::sleep, "sleep"},         {OpKind::wakeup, "wakeup"},
    {OpKind::can_wup, "can_wup"},     {OpKind::rel_wai, "rel_wai"},
    {OpKind::suspend, "suspend"},     {OpKind::resume, "resume"},
    {OpKind::frsm, "frsm"},           {OpKind::chg_pri, "chg_pri"},
    {OpKind::rot_rdq, "rot_rdq"},     {OpKind::sta_tsk, "sta_tsk"},
    {OpKind::ter_tsk, "ter_tsk"},     {OpKind::ext_tsk, "ext_tsk"},
    {OpKind::sem_wait, "sem_wait"},   {OpKind::sem_signal, "sem_signal"},
    {OpKind::flg_set, "flg_set"},     {OpKind::flg_clr, "flg_clr"},
    {OpKind::flg_wait, "flg_wait"},   {OpKind::mtx_lock, "mtx_lock"},
    {OpKind::mtx_unlock, "mtx_unlock"}, {OpKind::mbx_send, "mbx_send"},
    {OpKind::mbx_recv, "mbx_recv"},   {OpKind::mbf_send, "mbf_send"},
    {OpKind::mbf_recv, "mbf_recv"},   {OpKind::mpf_get, "mpf_get"},
    {OpKind::mpf_rel, "mpf_rel"},     {OpKind::mpl_get, "mpl_get"},
    {OpKind::mpl_rel, "mpl_rel"},     {OpKind::cyc_start, "cyc_start"},
    {OpKind::cyc_stop, "cyc_stop"},   {OpKind::alm_start, "alm_start"},
    {OpKind::alm_stop, "alm_stop"},   {OpKind::raise_int, "raise_int"},
    {OpKind::dsp_block, "dsp_block"}, {OpKind::ras_tex, "ras_tex"},
    {OpKind::ref_poll, "ref_poll"},
};
}  // namespace

const char* to_string(OpKind k) {
    for (const OpName& n : op_names) {
        if (n.kind == k) {
            return n.name;
        }
    }
    return "?";
}

bool op_kind_from_string(const std::string& name, OpKind& out) {
    for (const OpName& n : op_names) {
        if (name == n.name) {
            out = n.kind;
            return true;
        }
    }
    return false;
}

OpRef op_ref(OpKind k) {
    switch (k) {
        case OpKind::wakeup:
        case OpKind::can_wup:
        case OpKind::rel_wai:
        case OpKind::suspend:
        case OpKind::resume:
        case OpKind::frsm:
        case OpKind::chg_pri:
        case OpKind::sta_tsk:
        case OpKind::ter_tsk:
        case OpKind::ras_tex:
            return OpRef::task;
        case OpKind::sem_wait:
        case OpKind::sem_signal:
            return OpRef::sem;
        case OpKind::flg_set:
        case OpKind::flg_clr:
        case OpKind::flg_wait:
            return OpRef::flg;
        case OpKind::mtx_lock:
        case OpKind::mtx_unlock:
            return OpRef::mtx;
        case OpKind::mbx_send:
        case OpKind::mbx_recv:
            return OpRef::mbx;
        case OpKind::mbf_send:
        case OpKind::mbf_recv:
            return OpRef::mbf;
        case OpKind::mpf_get:
        case OpKind::mpf_rel:
            return OpRef::mpf;
        case OpKind::mpl_get:
        case OpKind::mpl_rel:
            return OpRef::mpl;
        case OpKind::cyc_start:
        case OpKind::cyc_stop:
            return OpRef::cyc;
        case OpKind::alm_start:
        case OpKind::alm_stop:
            return OpRef::alm;
        case OpKind::raise_int:
            return OpRef::intv;
        default:
            return OpRef::none;
    }
}

Json program_to_json(const Program& ops) {
    Json arr = Json::array();
    for (const Op& op : ops) {
        Json o = Json::array();
        o.push(Json::string(to_string(op.kind)));
        o.push(Json::number_signed(op.a));
        o.push(Json::number_signed(op.b));
        o.push(Json::number_signed(op.c));
        o.push(Json::number_signed(op.d));
        arr.push(std::move(o));
    }
    return arr;
}

bool program_from_json(const Json& arr, Program& out, std::string* error) {
    out.clear();
    if (!arr.is_array()) {
        if (error != nullptr) {
            *error = "op list is not an array";
        }
        return false;
    }
    for (const Json& o : arr.items()) {
        const auto& f = o.items();
        Op op;
        if (f.size() != 5 || !op_kind_from_string(f[0].as_string(), op.kind)) {
            if (error != nullptr) {
                *error = "malformed op entry";
            }
            return false;
        }
        op.a = static_cast<std::int32_t>(f[1].as_i64());
        op.b = static_cast<std::int32_t>(f[2].as_i64());
        op.c = static_cast<std::int32_t>(f[3].as_i64());
        op.d = static_cast<std::int32_t>(f[4].as_i64());
        out.push_back(op);
    }
    return true;
}

}  // namespace rtk::corpus
