#include "corpus/families.hpp"

#include <algorithm>
#include <utility>

#include "corpus/rng.hpp"

namespace rtk::corpus {

namespace {

Op op(OpKind k, std::int32_t a = 0, std::int32_t b = 0, std::int32_t c = 0,
      std::int32_t d = 0) {
    Op o;
    o.kind = k;
    o.a = a;
    o.b = b;
    o.c = c;
    o.d = d;
    return o;
}

/// Shared per-scenario knobs every family draws the same way, so seeds
/// explore the same dimensions across families.
struct Draws {
    std::uint32_t duration_ms;
    std::int32_t iter_units;
    std::uint32_t period_ms;  ///< base activation period
};

Draws common_draws(Rng& rng) {
    Draws d;
    d.duration_ms = static_cast<std::uint32_t>(rng.range(30, 60));
    d.iter_units = rng.irange(1, 5);
    d.period_ms = static_cast<std::uint32_t>(rng.range(2, 8));
    return d;
}

std::string scenario_name(const std::string& family, const FamilyParams& p) {
    return family + "/s" + std::to_string(p.size) + "/" +
           std::to_string(p.seed);
}

/// Optional low-rate heartbeat cyclic: exercises handler-context
/// dispatch without perturbing the task-level schedule much.
void maybe_add_heartbeat(ScenarioFile& sf, Rng& rng) {
    if (!rng.chance(40)) {
        return;
    }
    api::CycNode cyc;
    cyc.def.name = "beat";
    cyc.def.period_ms = static_cast<std::uint64_t>(rng.range(5, 15));
    cyc.def.phase_ms = static_cast<std::uint64_t>(rng.range(0, 5));
    cyc.def.autostart = true;
    sf.system.cyclics.push_back(std::move(cyc));
    sf.programs["p_beat"] = {op(OpKind::compute, rng.irange(2, 8))};
    sf.cyclic_bindings["beat"] = "p_beat";
}

}  // namespace

ScenarioFile generate_pipeline(const FamilyParams& p) {
    Rng rng(p.seed ^ 0x70695065ull);  // family tag
    ScenarioFile sf;
    sf.family = "pipeline";
    sf.seed = p.seed;
    sf.name = scenario_name(sf.family, p);
    const Draws d = common_draws(rng);
    sf.duration_ms = d.duration_ms;
    sf.config.iter_units = d.iter_units;

    const int stages = std::clamp(p.size, 2, 8);
    for (int i = 0; i + 1 < stages; ++i) {
        api::SemNode sem;
        sem.def.name = "q" + std::to_string(i);
        sem.def.initial = 0;
        sem.def.max = 1024;
        sem.def.priority_queue = rng.chance(50);
        sf.system.semaphores.push_back(std::move(sem));
    }
    for (int i = 0; i < stages; ++i) {
        api::TaskNode t;
        t.def.name = "stage" + std::to_string(i);
        t.def.priority = static_cast<tkernel::PRI>(rng.range(5, 20));
        t.auto_start = true;
        sf.system.tasks.push_back(std::move(t));

        const std::string prog = "p_stage" + std::to_string(i);
        Program body;
        if (i > 0) {
            body.push_back(op(OpKind::sem_wait, i - 1, 1, -1));
        }
        body.push_back(op(OpKind::compute, rng.irange(3, 20)));
        if (i + 1 < stages) {
            body.push_back(op(OpKind::sem_signal, i, 1));
        }
        if (i == 0) {
            // The source paces the whole chain.
            body.push_back(
                op(OpKind::delay, static_cast<std::int32_t>(d.period_ms)));
        }
        sf.programs[prog] = std::move(body);
        sf.task_bindings["stage" + std::to_string(i)] = prog;
    }
    maybe_add_heartbeat(sf, rng);

    RateCheck sink;
    sink.task = "stage" + std::to_string(stages - 1);
    sink.period_ms = d.period_ms;
    sink.min_percent = 50;
    sf.checks.push_back(std::move(sink));
    return sf;
}

ScenarioFile generate_fork_join(const FamilyParams& p) {
    Rng rng(p.seed ^ 0x666f726bull);
    ScenarioFile sf;
    sf.family = "fork_join";
    sf.seed = p.seed;
    sf.name = scenario_name(sf.family, p);
    const Draws d = common_draws(rng);
    sf.duration_ms = d.duration_ms;
    sf.config.iter_units = d.iter_units;

    const int workers = std::clamp(p.size, 2, 8);
    for (const char* name : {"work", "done"}) {
        api::SemNode sem;
        sem.def.name = name;
        sem.def.initial = 0;
        sem.def.max = 1024;
        sf.system.semaphores.push_back(std::move(sem));
    }

    api::TaskNode root;
    root.def.name = "root";
    root.def.priority = 8;
    root.auto_start = true;
    sf.system.tasks.push_back(std::move(root));
    sf.programs["p_root"] = {
        op(OpKind::sem_signal, 0, workers),
        op(OpKind::sem_wait, 1, workers, -1),
        op(OpKind::compute, rng.irange(3, 12)),
        op(OpKind::delay, static_cast<std::int32_t>(d.period_ms)),
    };
    sf.task_bindings["root"] = "p_root";

    for (int i = 0; i < workers; ++i) {
        api::TaskNode t;
        t.def.name = "w" + std::to_string(i);
        t.def.priority = static_cast<tkernel::PRI>(rng.range(10, 14));
        t.auto_start = true;
        sf.system.tasks.push_back(std::move(t));
        const std::string prog = "p_w" + std::to_string(i);
        sf.programs[prog] = {
            op(OpKind::sem_wait, 0, 1, -1),
            op(OpKind::compute, rng.irange(2, 15)),
            op(OpKind::sem_signal, 1, 1),
        };
        sf.task_bindings["w" + std::to_string(i)] = prog;
    }
    maybe_add_heartbeat(sf, rng);

    RateCheck join;
    join.task = "root";
    join.period_ms = d.period_ms;
    join.min_percent = 50;
    sf.checks.push_back(std::move(join));
    return sf;
}

ScenarioFile generate_priority_ladder(const FamilyParams& p) {
    Rng rng(p.seed ^ 0x6c616464ull);
    ScenarioFile sf;
    sf.family = "priority_ladder";
    sf.seed = p.seed;
    sf.name = scenario_name(sf.family, p);
    const Draws d = common_draws(rng);
    sf.duration_ms = d.duration_ms;
    sf.config.iter_units = d.iter_units;
    // Equal-priority rungs only make progress together under time
    // slicing; draw the policy so the family covers both schedulers.
    sf.config.round_robin = rng.chance(25);

    const int rungs = std::clamp(p.size, 3, 10);
    for (int i = 0; i < rungs; ++i) {
        api::TaskNode t;
        t.def.name = "rung" + std::to_string(i);
        // Rate-monotonic shape: shorter period, more urgent. An
        // occasional shared priority level exercises FCFS/slicing
        // within a level.
        const int pri = 4 + 3 * i - (i > 0 && rng.chance(20) ? 3 : 0);
        t.def.priority = static_cast<tkernel::PRI>(pri);
        t.auto_start = true;
        sf.system.tasks.push_back(std::move(t));

        const std::uint32_t period =
            d.period_ms + static_cast<std::uint32_t>(i) *
                              static_cast<std::uint32_t>(rng.range(1, 3));
        const std::string prog = "p_rung" + std::to_string(i);
        sf.programs[prog] = {
            op(OpKind::compute, rng.irange(3, 25)),
            op(OpKind::delay, static_cast<std::int32_t>(period)),
        };
        sf.task_bindings["rung" + std::to_string(i)] = prog;

        if (i < 2) {
            // Only the most urgent rungs carry bounds: lower rungs are
            // legitimately starved when the ladder is overloaded.
            RateCheck c;
            c.task = "rung" + std::to_string(i);
            c.period_ms = period;
            c.min_percent = i == 0 ? 70 : 50;
            if (i == 0 && !sf.config.round_robin) {
                c.deadline_ms = period;
            }
            sf.checks.push_back(std::move(c));
        }
    }
    maybe_add_heartbeat(sf, rng);
    return sf;
}

ScenarioFile generate_producer_consumer(const FamilyParams& p) {
    Rng rng(p.seed ^ 0x70726f64ull);
    ScenarioFile sf;
    sf.family = "producer_consumer";
    sf.seed = p.seed;
    sf.name = scenario_name(sf.family, p);
    const Draws d = common_draws(rng);
    sf.duration_ms = d.duration_ms;
    sf.config.iter_units = d.iter_units;
    sf.config.mbx_nodes = rng.irange(8, 32);

    const int total = std::clamp(p.size, 2, 8);
    const int producers = std::max(1, total / 2);
    const int consumers = std::max(1, total - producers);
    const int mailboxes = rng.irange(1, 2);
    for (int m = 0; m < mailboxes; ++m) {
        api::MbxNode mbx;
        mbx.def.name = "ch" + std::to_string(m);
        mbx.def.priority_messages = rng.chance(50);
        sf.system.mailboxes.push_back(std::move(mbx));
    }

    for (int i = 0; i < producers; ++i) {
        api::TaskNode t;
        t.def.name = "prod" + std::to_string(i);
        t.def.priority = static_cast<tkernel::PRI>(rng.range(10, 16));
        t.auto_start = true;
        sf.system.tasks.push_back(std::move(t));
        const std::string prog = "p_prod" + std::to_string(i);
        sf.programs[prog] = {
            op(OpKind::compute, rng.irange(2, 10)),
            op(OpKind::mbx_send, i % mailboxes, rng.irange(1, 8)),
            op(OpKind::delay, static_cast<std::int32_t>(d.period_ms)),
        };
        sf.task_bindings["prod" + std::to_string(i)] = prog;
    }
    for (int j = 0; j < consumers; ++j) {
        api::TaskNode t;
        t.def.name = "cons" + std::to_string(j);
        t.def.priority = static_cast<tkernel::PRI>(rng.range(6, 9));
        t.auto_start = true;
        sf.system.tasks.push_back(std::move(t));
        const std::string prog = "p_cons" + std::to_string(j);
        sf.programs[prog] = {
            op(OpKind::mbx_recv, j % mailboxes, -1),
            op(OpKind::compute, rng.irange(2, 12)),
        };
        sf.task_bindings["cons" + std::to_string(j)] = prog;
    }
    maybe_add_heartbeat(sf, rng);

    RateCheck pump;
    pump.task = "prod0";
    pump.period_ms = d.period_ms;
    pump.min_percent = 50;
    sf.checks.push_back(std::move(pump));
    return sf;
}

const std::vector<std::string>& family_names() {
    static const std::vector<std::string> names = {
        "pipeline",
        "fork_join",
        "priority_ladder",
        "producer_consumer",
    };
    return names;
}

bool generate_family(const std::string& family, const FamilyParams& p,
                     ScenarioFile& out) {
    if (family == "pipeline") {
        out = generate_pipeline(p);
        return true;
    }
    if (family == "fork_join") {
        out = generate_fork_join(p);
        return true;
    }
    if (family == "priority_ladder") {
        out = generate_priority_ladder(p);
        return true;
    }
    if (family == "producer_consumer") {
        out = generate_producer_consumer(p);
        return true;
    }
    return false;
}

}  // namespace rtk::corpus
