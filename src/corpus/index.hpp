// The pinned corpus index: one entry per scenario file, carrying a
// digest of the file bytes (did the text change?) and the behaviour
// fingerprint of one run (did the kernel change?). The index is the
// replay contract for a versioned corpus directory: validate compares
// digests without simulating, replay re-runs and compares fingerprints.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/json.hpp"

namespace rtk::corpus {

/// FNV-1a over a byte string; the corpus digest primitive.
std::uint64_t fnv1a64(const std::string& bytes);

struct IndexEntry {
    std::string file;  ///< path relative to the corpus root
    std::string family;
    std::uint64_t digest = 0;       ///< fnv1a64 over the file bytes
    std::uint64_t fingerprint = 0;  ///< harness behaviour fingerprint
    bool passed = false;            ///< run verdict incl. rate checks
};

struct CorpusIndex {
    std::uint32_t version = 1;
    std::vector<IndexEntry> entries;  ///< sorted by file path

    void sort();
    const IndexEntry* find(const std::string& file) const;

    api::Json to_json() const;
    std::string dump() const;  ///< canonical bytes (sorted, 2-indent, \n)
    static bool from_json(const api::Json& j, CorpusIndex& out,
                          std::string* error = nullptr);

    /// Read/write `<dir>/index.json` (write is atomic).
    static bool load(const std::string& dir, CorpusIndex& out,
                     std::string* error = nullptr);
    bool save(const std::string& dir, std::string* error = nullptr) const;
};

/// `<dir>/index.json`.
std::string index_path(const std::string& dir);

}  // namespace rtk::corpus
