// Schedulability-style verdicts: evaluate a scenario's RateChecks
// against the trace::Metrics of one run. Pure arithmetic over derived
// counters -- no simulation types -- so the corpus layer can classify
// runs without depending on the harness.
#pragma once

#include <string>
#include <vector>

#include "corpus/scenario_file.hpp"
#include "trace/metrics.hpp"

namespace rtk::corpus {

/// One evaluated check. `ok` is the verdict; `detail` is a one-line
/// human explanation either way.
struct CheckResult {
    std::string task;
    bool ok = false;
    std::string detail;
};

/// Evaluate every RateCheck in `file` against `m`. A task missing from
/// the metrics (never traced) fails its check. Empty result means the
/// scenario declared no checks.
std::vector<CheckResult> evaluate_checks(const ScenarioFile& file,
                                         const trace::Metrics& m);

/// True when every result passed (vacuously true for no checks).
bool all_passed(const std::vector<CheckResult>& results);

}  // namespace rtk::corpus
