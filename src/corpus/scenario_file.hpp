// One ScenarioFile is one complete, replayable world: the structural
// object graph (api::SystemSpec), the kernel configuration (policy,
// tick, delta budget), a registry of named op programs, the bindings
// that attach programs to tasks and handlers, and rate/deadline checks
// evaluated from trace::Metrics after a run. Everything round-trips
// through one JSON document with canonical bytes (dump()), so a corpus
// entry can be diffed, fingerprint-pinned and replayed byte-for-byte.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "api/builder.hpp"
#include "api/json.hpp"
#include "corpus/ops.hpp"

namespace rtk::corpus {

/// Kernel + interpreter knobs folded into the scenario document. The
/// harness maps these onto Simulation::Config when building the run.
struct KernelConfig {
    std::uint32_t tick_us = 1000;  ///< system timer period
    bool round_robin = false;      ///< scheduler policy (false: pure priority)
    std::uint64_t delta_budget = 0;   ///< 0: harness default hang budget
    std::int32_t iter_units = 10;  ///< idle units between program iterations
    std::int32_t mbx_nodes = 8;    ///< per-mailbox message-node pool size
};

/// Schedulability-style acceptance bound on one task, evaluated from
/// trace::Metrics: the task must complete at least `min_percent`% of
/// duration_ms / period_ms expected activations, and (when deadline_ms
/// is set) its mean ready-to-running latency must stay under the
/// deadline.
struct RateCheck {
    std::string task;
    std::uint32_t period_ms = 10;
    std::uint32_t deadline_ms = 0;   ///< 0: no latency bound
    std::uint32_t min_percent = 50;  ///< completion floor in percent
};

struct ScenarioFile {
    std::string name;    ///< scenario id, e.g. "pipeline/s4/17"
    std::string family;  ///< generator family, "" for hand-written files
    std::uint64_t seed = 0;
    std::uint32_t duration_ms = 50;
    KernelConfig config;
    api::SystemSpec system;

    /// Behaviour registry: named programs, attached to objects by name
    /// (tasks/cyclics/alarms) or vector number (interrupts). Unbound
    /// tasks idle; unbound handlers are no-ops.
    std::map<std::string, Program> programs;
    std::map<std::string, std::string> task_bindings;
    std::map<std::string, std::string> cyclic_bindings;
    std::map<std::string, std::string> alarm_bindings;
    std::map<std::uint32_t, std::string> interrupt_bindings;

    std::vector<RateCheck> checks;

    /// Registry lookup; nullptr when absent.
    const Program* find_program(const std::string& program) const;
    /// Program bound to a task name; nullptr when unbound.
    const Program* task_program(const std::string& task) const;

    api::Json to_json() const;
    /// Canonical bytes: 2-space indented JSON plus trailing newline.
    /// parse(dump()) == *this, and dump() is byte-stable across runs.
    std::string dump() const;

    /// Strict load: malformed documents, unknown op names, bindings to
    /// missing programs/objects, out-of-range op operands and bad
    /// checks all fail with a diagnostic.
    static bool from_json(const api::Json& j, ScenarioFile& out,
                          std::string* error = nullptr);
    static bool parse(const std::string& text, ScenarioFile& out,
                      std::string* error = nullptr);
};

}  // namespace rtk::corpus
