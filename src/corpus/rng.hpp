// Deterministic, platform-independent random source shared by the
// scenario fuzzer and the corpus family generators. std::mt19937_64 is
// portable but the std:: distributions are not (their algorithms are
// implementation-defined), so the generator rolls its own: SplitMix64
// for the stream and explicit bounded draws. Identical seeds must
// generate identical scenarios on every compiler/stdlib, or corpus
// files and repro JSON stop being portable.
#pragma once

#include <cstdint>

namespace rtk::corpus {

class Rng {
public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /// SplitMix64 step (public domain, Vigna 2015).
    std::uint64_t next_u64() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /// Uniform draw in [0, bound); bound 0 yields 0. Multiply-shift
    /// mapping (Lemire): biased by at most 2^-64 per draw, identically on
    /// every platform.
    std::uint64_t below(std::uint64_t bound) {
        if (bound == 0) {
            return 0;
        }
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
    }

    /// Uniform draw in [lo, hi] (inclusive).
    std::int64_t range(std::int64_t lo, std::int64_t hi) {
        if (hi <= lo) {
            return lo;
        }
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    int irange(int lo, int hi) { return static_cast<int>(range(lo, hi)); }

    /// True with probability `percent`/100.
    bool chance(int percent) { return below(100) < static_cast<std::uint64_t>(percent); }

private:
    std::uint64_t state_;
};

}  // namespace rtk::corpus
