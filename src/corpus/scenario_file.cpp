#include "corpus/scenario_file.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace rtk::corpus {

using api::Json;

namespace {

bool is_null(const Json& j) { return j.kind() == Json::Kind::null; }
bool is_string(const Json& j) { return j.kind() == Json::Kind::string; }

bool fail(std::string* error, std::string what) {
    if (error != nullptr) {
        *error = std::move(what);
    }
    return false;
}

/// Count of declared objects in the class an op addresses, or -1 when
/// the op takes no object operand.
std::int64_t ref_population(const api::SystemSpec& sys, OpRef ref) {
    switch (ref) {
        case OpRef::task:
            return static_cast<std::int64_t>(sys.tasks.size());
        case OpRef::sem:
            return static_cast<std::int64_t>(sys.semaphores.size());
        case OpRef::flg:
            return static_cast<std::int64_t>(sys.eventflags.size());
        case OpRef::mtx:
            return static_cast<std::int64_t>(sys.mutexes.size());
        case OpRef::mbx:
            return static_cast<std::int64_t>(sys.mailboxes.size());
        case OpRef::mbf:
            return static_cast<std::int64_t>(sys.msgbufs.size());
        case OpRef::mpf:
            return static_cast<std::int64_t>(sys.fixed_pools.size());
        case OpRef::mpl:
            return static_cast<std::int64_t>(sys.var_pools.size());
        case OpRef::cyc:
            return static_cast<std::int64_t>(sys.cyclics.size());
        case OpRef::alm:
            return static_cast<std::int64_t>(sys.alarms.size());
        case OpRef::intv:
            return static_cast<std::int64_t>(sys.interrupts.size());
        case OpRef::none:
            break;
    }
    return -1;
}

bool has_task(const api::SystemSpec& sys, const std::string& name) {
    for (const api::TaskNode& n : sys.tasks) {
        if (n.def.name == name) {
            return true;
        }
    }
    return false;
}

bool has_cyclic(const api::SystemSpec& sys, const std::string& name) {
    for (const api::CycNode& n : sys.cyclics) {
        if (n.def.name == name) {
            return true;
        }
    }
    return false;
}

bool has_alarm(const api::SystemSpec& sys, const std::string& name) {
    for (const api::AlmNode& n : sys.alarms) {
        if (n.def.name == name) {
            return true;
        }
    }
    return false;
}

bool has_intno(const api::SystemSpec& sys, std::uint32_t intno) {
    for (const api::IntNode& n : sys.interrupts) {
        if (n.intno == intno) {
            return true;
        }
    }
    return false;
}

bool read_bindings(const Json& bind, const char* key,
                   std::map<std::string, std::string>& out,
                   std::string* error) {
    const Json& sect = bind.at(key);
    if (is_null(sect)) {
        return true;
    }
    if (!sect.is_object()) {
        return fail(error, std::string("bind.") + key + " is not an object");
    }
    for (const auto& [obj, prog] : sect.members()) {
        if (!is_string(prog) || prog.as_string().empty()) {
            return fail(error, std::string("bind.") + key + "['" + obj +
                                   "'] is not a program name");
        }
        out[obj] = prog.as_string();
    }
    return true;
}

}  // namespace

const Program* ScenarioFile::find_program(const std::string& program) const {
    const auto it = programs.find(program);
    return it == programs.end() ? nullptr : &it->second;
}

const Program* ScenarioFile::task_program(const std::string& task) const {
    const auto it = task_bindings.find(task);
    return it == task_bindings.end() ? nullptr : find_program(it->second);
}

Json ScenarioFile::to_json() const {
    Json j = Json::object();
    j.set("rtk_scenario", Json::number(1));
    j.set("name", Json::string(name));
    j.set("family", Json::string(family));
    j.set("seed", Json::number(seed));
    j.set("duration_ms", Json::number(duration_ms));

    Json cfg = Json::object();
    cfg.set("tick_us", Json::number(config.tick_us));
    cfg.set("round_robin", Json::boolean(config.round_robin));
    cfg.set("delta_budget", Json::number(config.delta_budget));
    cfg.set("iter_units", Json::number_signed(config.iter_units));
    cfg.set("mbx_nodes", Json::number_signed(config.mbx_nodes));
    j.set("config", std::move(cfg));

    j.set("system", system.to_json());

    Json progs = Json::object();
    for (const auto& [pname, prog] : programs) {
        progs.set(pname, program_to_json(prog));
    }
    j.set("programs", std::move(progs));

    Json bind = Json::object();
    Json bt = Json::object();
    for (const auto& [obj, prog] : task_bindings) {
        bt.set(obj, Json::string(prog));
    }
    bind.set("tasks", std::move(bt));
    Json bc = Json::object();
    for (const auto& [obj, prog] : cyclic_bindings) {
        bc.set(obj, Json::string(prog));
    }
    bind.set("cyclics", std::move(bc));
    Json ba = Json::object();
    for (const auto& [obj, prog] : alarm_bindings) {
        ba.set(obj, Json::string(prog));
    }
    bind.set("alarms", std::move(ba));
    Json bi = Json::object();
    for (const auto& [intno, prog] : interrupt_bindings) {
        char key[16];
        std::snprintf(key, sizeof(key), "%u", intno);
        bi.set(key, Json::string(prog));
    }
    bind.set("interrupts", std::move(bi));
    j.set("bind", std::move(bind));

    Json jc = Json::array();
    for (const RateCheck& c : checks) {
        Json o = Json::object();
        o.set("task", Json::string(c.task));
        o.set("period_ms", Json::number(c.period_ms));
        o.set("deadline_ms", Json::number(c.deadline_ms));
        o.set("min_percent", Json::number(c.min_percent));
        jc.push(std::move(o));
    }
    j.set("checks", std::move(jc));
    return j;
}

std::string ScenarioFile::dump() const { return to_json().dump(2) + "\n"; }

bool ScenarioFile::from_json(const Json& j, ScenarioFile& out,
                             std::string* error) {
    if (!j.is_object() || j.at("rtk_scenario").as_u64() != 1) {
        return fail(error, "not a rtk_scenario v1 document");
    }
    out = ScenarioFile{};
    out.name = j.at("name").as_string();
    if (out.name.empty()) {
        return fail(error, "missing scenario name");
    }
    out.family = j.at("family").as_string();
    out.seed = j.at("seed").as_u64();
    out.duration_ms = static_cast<std::uint32_t>(j.at("duration_ms").as_u64());
    if (out.duration_ms == 0) {
        return fail(error, "duration_ms must be positive");
    }

    const Json& cfg = j.at("config");
    out.config.tick_us =
        static_cast<std::uint32_t>(cfg.at("tick_us").as_u64(1000));
    out.config.round_robin = cfg.at("round_robin").as_bool();
    out.config.delta_budget = cfg.at("delta_budget").as_u64();
    out.config.iter_units =
        static_cast<std::int32_t>(cfg.at("iter_units").as_i64(10));
    out.config.mbx_nodes =
        static_cast<std::int32_t>(cfg.at("mbx_nodes").as_i64(8));
    if (out.config.tick_us == 0) {
        return fail(error, "config.tick_us must be positive");
    }
    if (out.config.iter_units <= 0) {
        return fail(error, "config.iter_units must be positive");
    }
    if (out.config.mbx_nodes <= 0) {
        return fail(error, "config.mbx_nodes must be positive");
    }

    std::string serr;
    if (!api::SystemSpec::from_json(j.at("system"), out.system, &serr)) {
        return fail(error, "system: " + serr);
    }

    const Json& progs = j.at("programs");
    if (!is_null(progs)) {
        if (!progs.is_object()) {
            return fail(error, "programs is not an object");
        }
        for (const auto& [pname, body] : progs.members()) {
            if (pname.empty()) {
                return fail(error, "empty program name");
            }
            std::string perr;
            Program prog;
            if (!program_from_json(body, prog, &perr)) {
                return fail(error, "program '" + pname + "': " + perr);
            }
            out.programs[pname] = std::move(prog);
        }
    }

    // Every op operand must address a declared object: the interpreter
    // would silently no-op, but a corpus entry that references nothing
    // is a generator bug worth rejecting at load time.
    for (const auto& [pname, prog] : out.programs) {
        for (const Op& op : prog) {
            const OpRef ref = op_ref(op.kind);
            const std::int64_t population = ref_population(out.system, ref);
            if (population >= 0 && (op.a < 0 || op.a >= population)) {
                return fail(error, "program '" + pname + "': op '" +
                                       to_string(op.kind) +
                                       "' operand out of range");
            }
        }
    }

    const Json& bind = j.at("bind");
    if (!is_null(bind)) {
        if (!bind.is_object()) {
            return fail(error, "bind is not an object");
        }
        if (!read_bindings(bind, "tasks", out.task_bindings, error) ||
            !read_bindings(bind, "cyclics", out.cyclic_bindings, error) ||
            !read_bindings(bind, "alarms", out.alarm_bindings, error)) {
            return false;
        }
        const Json& bi = bind.at("interrupts");
        if (bi.is_object()) {
            for (const auto& [key, prog] : bi.members()) {
                char* end = nullptr;
                const unsigned long intno = std::strtoul(key.c_str(), &end, 10);
                if (end == key.c_str() || *end != '\0') {
                    return fail(error,
                                "bind.interrupts key '" + key +
                                    "' is not an interrupt number");
                }
                if (!is_string(prog) || prog.as_string().empty()) {
                    return fail(error, "bind.interrupts['" + key +
                                           "'] is not a program name");
                }
                out.interrupt_bindings[static_cast<std::uint32_t>(intno)] =
                    prog.as_string();
            }
        } else if (!is_null(bi)) {
            return fail(error, "bind.interrupts is not an object");
        }
    }

    for (const auto& [task, prog] : out.task_bindings) {
        if (!has_task(out.system, task)) {
            return fail(error, "bind.tasks: unknown task '" + task + "'");
        }
        if (out.find_program(prog) == nullptr) {
            return fail(error, "bind.tasks: unknown program '" + prog + "'");
        }
    }
    for (const auto& [cyc, prog] : out.cyclic_bindings) {
        if (!has_cyclic(out.system, cyc)) {
            return fail(error, "bind.cyclics: unknown cyclic '" + cyc + "'");
        }
        if (out.find_program(prog) == nullptr) {
            return fail(error, "bind.cyclics: unknown program '" + prog + "'");
        }
    }
    for (const auto& [alm, prog] : out.alarm_bindings) {
        if (!has_alarm(out.system, alm)) {
            return fail(error, "bind.alarms: unknown alarm '" + alm + "'");
        }
        if (out.find_program(prog) == nullptr) {
            return fail(error, "bind.alarms: unknown program '" + prog + "'");
        }
    }
    for (const auto& [intno, prog] : out.interrupt_bindings) {
        if (!has_intno(out.system, intno)) {
            return fail(error, "bind.interrupts: no interrupt vector " +
                                   std::to_string(intno));
        }
        if (out.find_program(prog) == nullptr) {
            return fail(error,
                        "bind.interrupts: unknown program '" + prog + "'");
        }
    }

    const Json& jc = j.at("checks");
    if (!is_null(jc)) {
        if (!jc.is_array()) {
            return fail(error, "checks is not an array");
        }
        for (const Json& o : jc.items()) {
            RateCheck c;
            c.task = o.at("task").as_string();
            c.period_ms = static_cast<std::uint32_t>(o.at("period_ms").as_u64());
            c.deadline_ms =
                static_cast<std::uint32_t>(o.at("deadline_ms").as_u64());
            c.min_percent =
                static_cast<std::uint32_t>(o.at("min_percent").as_u64(50));
            if (!has_task(out.system, c.task)) {
                return fail(error, "checks: unknown task '" + c.task + "'");
            }
            if (c.period_ms == 0) {
                return fail(error, "checks: period_ms must be positive");
            }
            if (c.min_percent > 100) {
                return fail(error, "checks: min_percent above 100");
            }
            out.checks.push_back(std::move(c));
        }
    }
    return true;
}

bool ScenarioFile::parse(const std::string& text, ScenarioFile& out,
                         std::string* error) {
    Json j;
    std::string perr;
    if (!Json::parse(text, j, &perr)) {
        return fail(error, "json: " + perr);
    }
    return from_json(j, out, error);
}

}  // namespace rtk::corpus
