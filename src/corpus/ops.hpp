// The op program data model: one Op is one interpreted kernel action
// (a service call, a compute burst, a probe), a Program is a sequence of
// them. Programs are pure data -- object operands are 0-based indices
// into the declaration order of the referenced class -- so a behaviour
// is serializable, diffable and replayable byte-for-byte. The harness
// owns the interpreter (harness/fuzz_interp.hpp) that executes them
// against a live kernel; this layer owns the encoding so corpus files
// can carry behaviour without depending on the harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/json.hpp"

namespace rtk::corpus {

/// Timeout encoding used throughout op operands: -1 wait-forever
/// (TMO_FEVR), 0 polling (TMO_POL), > 0 finite milliseconds.
using SpecTmo = std::int32_t;

enum class OpKind : std::uint8_t {
    compute,     ///< a: work units
    delay,       ///< a: ms                       (tk_dly_tsk)
    sleep,       ///< a: tmo                      (tk_slp_tsk)
    wakeup,      ///< a: task                     (tk_wup_tsk)
    can_wup,     ///< a: task                     (tk_can_wup)
    rel_wai,     ///< a: task                     (tk_rel_wai)
    suspend,     ///< a: task                     (tk_sus_tsk)
    resume,      ///< a: task                     (tk_rsm_tsk)
    frsm,        ///< a: task                     (tk_frsm_tsk)
    chg_pri,     ///< a: task, b: pri (0 = TPRI_INI)
    rot_rdq,     ///< a: pri (0 = TPRI_RUN)
    sta_tsk,     ///< a: task
    ter_tsk,     ///< a: task
    ext_tsk,     ///< end the invoking task's cycle
    sem_wait,    ///< a: sem, b: cnt, c: tmo
    sem_signal,  ///< a: sem, b: cnt
    flg_set,     ///< a: flg, b: pattern
    flg_clr,     ///< a: flg, b: keep-mask
    flg_wait,    ///< a: flg, b: pattern, c: mode selector 0..5, d: tmo
    mtx_lock,    ///< a: mtx, b: tmo
    mtx_unlock,  ///< a: mtx
    mbx_send,    ///< a: mbx, b: message priority
    mbx_recv,    ///< a: mbx, b: tmo
    mbf_send,    ///< a: mbf, b: bytes, c: tmo
    mbf_recv,    ///< a: mbf, b: tmo
    mpf_get,     ///< a: pool, b: tmo
    mpf_rel,     ///< a: pool (oldest held block)
    mpl_get,     ///< a: pool, b: bytes, c: tmo
    mpl_rel,     ///< a: pool (oldest held block)
    cyc_start,   ///< a: cyc
    cyc_stop,    ///< a: cyc
    alm_start,   ///< a: alm, b: ms
    alm_stop,    ///< a: alm
    raise_int,   ///< a: vector index
    dsp_block,   ///< a: units -- tk_dis_dsp; compute; tk_ena_dsp
    ras_tex,     ///< a: task, b: pattern
    ref_poll,    ///< a: selector -- one read-only tk_ref_* probe
};

const char* to_string(OpKind k);
/// Inverse of to_string(); returns false for unknown names.
bool op_kind_from_string(const std::string& name, OpKind& out);

/// Object class an op's `a` operand addresses (intv: 0-based index into
/// the declared interrupt vectors). Used for operand-range validation;
/// the interpreter itself no-ops on out-of-range indices.
enum class OpRef : std::uint8_t {
    none,
    task,
    sem,
    flg,
    mtx,
    mbx,
    mbf,
    mpf,
    mpl,
    cyc,
    alm,
    intv,
};
OpRef op_ref(OpKind k);

struct Op {
    OpKind kind = OpKind::compute;
    std::int32_t a = 0;
    std::int32_t b = 0;
    std::int32_t c = 0;
    std::int32_t d = 0;
};

using Program = std::vector<Op>;

/// One op as ["name", a, b, c, d]; a program as an array of those. The
/// encoding is shared with the fuzzer's repro files, so it must stay
/// byte-stable.
api::Json program_to_json(const Program& ops);
bool program_from_json(const api::Json& arr, Program& out,
                       std::string* error = nullptr);

}  // namespace rtk::corpus
