#include "corpus/checks.hpp"

#include <cstdarg>
#include <cstdio>

namespace rtk::corpus {

namespace {

const trace::TaskMetrics* find_task(const trace::Metrics& m,
                                    const std::string& name) {
    for (const trace::TaskMetrics& t : m.tasks) {
        if (t.name == name) {
            return &t;
        }
    }
    return nullptr;
}

std::string format(const char* fmt, ...) {
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

}  // namespace

std::vector<CheckResult> evaluate_checks(const ScenarioFile& file,
                                         const trace::Metrics& m) {
    std::vector<CheckResult> out;
    out.reserve(file.checks.size());
    for (const RateCheck& c : file.checks) {
        CheckResult r;
        r.task = c.task;
        const trace::TaskMetrics* t = find_task(m, c.task);
        if (t == nullptr) {
            r.ok = false;
            r.detail = "task never appeared in the trace";
            out.push_back(std::move(r));
            continue;
        }
        // Completion floor: each program iteration begins with a fresh
        // dispatch, so dispatches is the activation count. The expected
        // number of activations over the run is duration / period;
        // require at least min_percent of that (integer floor, so a
        // 100% bound tolerates the final partial period).
        const std::uint64_t expected = file.duration_ms / c.period_ms;
        const std::uint64_t required = expected * c.min_percent / 100;
        if (t->dispatches < required) {
            r.ok = false;
            r.detail = format(
                "%llu dispatches, need %llu (%u%% of %llu expected at %u ms)",
                static_cast<unsigned long long>(t->dispatches),
                static_cast<unsigned long long>(required), c.min_percent,
                static_cast<unsigned long long>(expected), c.period_ms);
            out.push_back(std::move(r));
            continue;
        }
        // Latency bound: mean time spent ready-but-preempted per
        // activation must fit the deadline. A starved task piles up
        // ready time; a schedulable one barely waits.
        if (c.deadline_ms > 0 && t->dispatches > 0) {
            const std::uint64_t mean_ready_ps = t->ready_ps() / t->dispatches;
            const std::uint64_t bound_ps =
                static_cast<std::uint64_t>(c.deadline_ms) * 1000000000ull;
            if (mean_ready_ps > bound_ps) {
                r.ok = false;
                r.detail =
                    format("mean ready latency %.3f ms exceeds %u ms deadline",
                           static_cast<double>(mean_ready_ps) / 1e9,
                           c.deadline_ms);
                out.push_back(std::move(r));
                continue;
            }
        }
        r.ok = true;
        r.detail = format("%llu dispatches (floor %llu)",
                          static_cast<unsigned long long>(t->dispatches),
                          static_cast<unsigned long long>(required));
        out.push_back(std::move(r));
    }
    return out;
}

bool all_passed(const std::vector<CheckResult>& results) {
    for (const CheckResult& r : results) {
        if (!r.ok) {
            return false;
        }
    }
    return true;
}

}  // namespace rtk::corpus
