#include "corpus/index.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "sysc/fsio.hpp"

namespace rtk::corpus {

using api::Json;

std::uint64_t fnv1a64(const std::string& bytes) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

namespace {

bool fail(std::string* error, std::string what) {
    if (error != nullptr) {
        *error = std::move(what);
    }
    return false;
}

std::string hex64(std::uint64_t v) {
    char buf[20];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool parse_hex64(const Json& j, std::uint64_t& out) {
    const std::string& s = j.as_string();
    if (s.size() < 3 || s[0] != '0' || s[1] != 'x') {
        return false;
    }
    char* end = nullptr;
    out = std::strtoull(s.c_str() + 2, &end, 16);
    return end != nullptr && *end == '\0';
}

}  // namespace

void CorpusIndex::sort() {
    std::sort(entries.begin(), entries.end(),
              [](const IndexEntry& a, const IndexEntry& b) {
                  return a.file < b.file;
              });
}

const IndexEntry* CorpusIndex::find(const std::string& file) const {
    const auto it = std::lower_bound(
        entries.begin(), entries.end(), file,
        [](const IndexEntry& e, const std::string& f) { return e.file < f; });
    return it != entries.end() && it->file == file ? &*it : nullptr;
}

Json CorpusIndex::to_json() const {
    Json j = Json::object();
    j.set("rtk_corpus_index", Json::number(version));
    Json arr = Json::array();
    for (const IndexEntry& e : entries) {
        Json o = Json::object();
        o.set("file", Json::string(e.file));
        o.set("family", Json::string(e.family));
        o.set("digest", Json::string(hex64(e.digest)));
        o.set("fingerprint", Json::string(hex64(e.fingerprint)));
        o.set("passed", Json::boolean(e.passed));
        arr.push(std::move(o));
    }
    j.set("entries", std::move(arr));
    return j;
}

std::string CorpusIndex::dump() const {
    CorpusIndex sorted = *this;
    sorted.sort();
    return sorted.to_json().dump(2) + "\n";
}

bool CorpusIndex::from_json(const Json& j, CorpusIndex& out,
                            std::string* error) {
    if (!j.is_object() || !j.has("rtk_corpus_index")) {
        return fail(error, "not a rtk_corpus_index document");
    }
    out = CorpusIndex{};
    out.version = static_cast<std::uint32_t>(j.at("rtk_corpus_index").as_u64());
    if (out.version != 1) {
        return fail(error,
                    "unsupported index version " + std::to_string(out.version));
    }
    for (const Json& o : j.at("entries").items()) {
        IndexEntry e;
        e.file = o.at("file").as_string();
        e.family = o.at("family").as_string();
        if (e.file.empty()) {
            return fail(error, "index entry with empty file path");
        }
        if (!parse_hex64(o.at("digest"), e.digest) ||
            !parse_hex64(o.at("fingerprint"), e.fingerprint)) {
            return fail(error, "bad digest/fingerprint for " + e.file);
        }
        e.passed = o.at("passed").as_bool();
        out.entries.push_back(std::move(e));
    }
    out.sort();
    return true;
}

std::string index_path(const std::string& dir) { return dir + "/index.json"; }

bool CorpusIndex::load(const std::string& dir, CorpusIndex& out,
                       std::string* error) {
    std::ifstream in(index_path(dir), std::ios::binary);
    if (!in) {
        return fail(error, "cannot open " + index_path(dir));
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    Json j;
    std::string perr;
    if (!Json::parse(ss.str(), j, &perr)) {
        return fail(error, index_path(dir) + ": " + perr);
    }
    return from_json(j, out, error);
}

bool CorpusIndex::save(const std::string& dir, std::string* error) const {
    return sysc::write_file_atomic(index_path(dir), dump(), error);
}

}  // namespace rtk::corpus
