// Umbrella header for the rtk harness layer: the context-explicit
// Simulation handle, the declarative batch scenario runner, the
// property-based scenario fuzzer and the fault-injection campaign
// engine.
#pragma once

#include "harness/fault.hpp"      // IWYU pragma: export
#include "harness/fuzz.hpp"       // IWYU pragma: export
#include "harness/runner.hpp"      // IWYU pragma: export
#include "harness/scenario.hpp"   // IWYU pragma: export
#include "harness/simulation.hpp" // IWYU pragma: export
