// Umbrella header for the rtk harness layer: the context-explicit
// Simulation handle plus the declarative batch scenario runner.
#pragma once

#include "harness/runner.hpp"      // IWYU pragma: export
#include "harness/scenario.hpp"   // IWYU pragma: export
#include "harness/simulation.hpp" // IWYU pragma: export
