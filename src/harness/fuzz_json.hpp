// The fuzzer's JSON document model now lives in the api layer
// (api/json.hpp) so api::SystemSpec can round-trip without depending on
// the harness; this header keeps the historical rtk::harness::fuzz::Json
// spelling working for the repro-file code and its tests.
#pragma once

#include "api/json.hpp"

namespace rtk::harness::fuzz {

using Json = rtk::api::Json;

}  // namespace rtk::harness::fuzz
