#include "harness/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <utility>

#include "api/builder.hpp"
#include "api/error.hpp"
#include "harness/campaign.hpp"
#include "harness/campaign_store.hpp"
#include "harness/runner.hpp"
#include "harness/simulation.hpp"
#include "sysc/fsio.hpp"
#include "sysc/report.hpp"
#include "tkernel/tkernel.hpp"

namespace rtk::harness::fuzz {

using api::Json;

using namespace rtk::tkernel;
using sim::ExecContext;
using sysc::Time;

// ============================================================================
// Workload construction (the op interpreter lives in fuzz_interp.cpp)
// ============================================================================

namespace {

/// Lower the FuzzSpec's object population onto the shared IR: one
/// api::SystemSpec describing the whole graph, op programs attached as
/// behaviour closures over the per-run Runtime.
api::SystemSpec build_system_spec(const std::shared_ptr<Runtime>& rt) {
    const FuzzSpec& spec = *rt->spec;
    api::SystemBuilder b;

    for (std::size_t i = 0; i < spec.sems.size(); ++i) {
        const SemSpec& s = spec.sems[i];
        const INT init = std::clamp(s.init, 0, 1 << 16);
        b.semaphore("fz_sem" + std::to_string(i))
            .initial(init)
            .max(std::clamp(s.max, std::max(1, init), 1 << 16))
            .priority_queue(s.tpri)
            .count_order(s.cnt_order);
    }
    for (std::size_t i = 0; i < spec.flgs.size(); ++i) {
        const FlgSpec& f = spec.flgs[i];
        b.eventflag("fz_flg" + std::to_string(i))
            .initial(f.init)
            .priority_queue(f.tpri)
            .multi_waiter(f.wmul);
    }
    for (std::size_t i = 0; i < spec.mtxs.size(); ++i) {
        const MtxSpec& m = spec.mtxs[i];
        api::MtxNode& node = b.mutex("fz_mtx" + std::to_string(i));
        node.protocol(static_cast<api::MutexDef::Protocol>(std::clamp(m.proto, 0, 3)));
        node.def.ceiling = std::clamp(m.ceil, min_priority, max_priority);
    }
    for (std::size_t i = 0; i < spec.mbxs.size(); ++i) {
        const MbxSpec& m = spec.mbxs[i];
        b.mailbox("fz_mbx" + std::to_string(i))
            .priority_queue(m.tpri)
            .priority_messages(m.mpri);
    }
    for (std::size_t i = 0; i < spec.mbfs.size(); ++i) {
        const MbfSpec& m = spec.mbfs[i];
        b.msgbuf("fz_mbf" + std::to_string(i))
            .buffer_size(std::clamp(m.bufsz, 0, 1 << 16))
            .max_message(std::clamp(m.maxmsz, 1, 1 << 12))
            .priority_queue(m.tpri);
    }
    for (std::size_t i = 0; i < spec.mpfs.size(); ++i) {
        const MpfSpec& m = spec.mpfs[i];
        b.fixed_pool("fz_mpf" + std::to_string(i))
            .blocks(std::clamp(m.cnt, 1, 256))
            .block_size(std::clamp(m.blksz, 1, 1 << 12))
            .priority_queue(m.tpri);
    }
    for (std::size_t i = 0; i < spec.mpls.size(); ++i) {
        const MplSpec& m = spec.mpls[i];
        b.var_pool("fz_mpl" + std::to_string(i))
            .size(std::clamp(m.size, 8, 1 << 16))
            .priority_queue(m.tpri);
    }

    for (std::size_t i = 0; i < spec.tasks.size(); ++i) {
        const TaskSpec& t = spec.tasks[i];
        const int self = static_cast<int>(i);
        api::TaskNode& node =
            b.task("fz_task" + std::to_string(i))
                .priority(std::clamp(t.pri, min_priority, max_priority))
                .entry([rt, self](INT, void*) {
                    for (;;) {
                        rt->tk->sim().SIM_WaitUnits(
                            static_cast<std::uint64_t>(
                                std::clamp(rt->spec->iter_units, 1, 1000)),
                            ExecContext::task);
                        run_program(rt, self,
                                    rt->spec->tasks[static_cast<std::size_t>(self)].ops,
                                    /*handler=*/false);
                    }
                })
                .autostart();
        if (t.tex) {
            node.exception_handler([rt](UINT) {
                rt->tk->sim().SIM_WaitUnits(5, ExecContext::service_call);
            });
        }
    }

    for (std::size_t i = 0; i < spec.cycs.size(); ++i) {
        const CycSpec& c = spec.cycs[i];
        const std::size_t idx = i;
        b.cyclic("fz_cyc" + std::to_string(i))
            .period(static_cast<RELTIM>(std::clamp(c.period_ms, 1, 1000)))
            .phase(static_cast<RELTIM>(std::clamp(c.phase_ms, 0, 1000)))
            .autostart(c.autostart)
            .honor_phase(c.phs)
            .handler([rt, idx](void*) {
                run_program(rt, -1, rt->spec->cycs[idx].ops, /*handler=*/true);
            });
    }
    for (std::size_t i = 0; i < spec.alms.size(); ++i) {
        const AlmSpec& a = spec.alms[i];
        const std::size_t idx = i;
        b.alarm("fz_alm" + std::to_string(i))
            .handler([rt, idx](void*) {
                run_program(rt, -1, rt->spec->alms[idx].ops, /*handler=*/true);
            })
            .start_after(a.start_ms > 0
                             ? static_cast<RELTIM>(std::clamp(a.start_ms, 1, 1000))
                             : 0);
    }
    for (std::size_t i = 0; i < spec.ints.size(); ++i) {
        const IntSpec& v = spec.ints[i];
        const std::size_t idx = i;
        b.interrupt(100 + static_cast<UINT>(i))
            .priority(std::clamp(v.pri, 1, 8))
            .handler([rt, idx](void*) {
                run_program(rt, -1, rt->spec->ints[idx].ops, /*handler=*/true);
            });
    }
    return b.take_spec();
}

/// The user main: instantiates the whole object population through the
/// api facade and seeds the interpreter's runtime tables. Runs inside
/// the init task after boot.
void setup_workload(const std::shared_ptr<Runtime>& rt) {
    TKernel& tk = *rt->tk;
    const FuzzSpec& spec = *rt->spec;

    // Workload-side runtime state the kernel does not manage: mailbox
    // message-node pools and per-task message-buffer payload buffers.
    for (const MbxSpec& m : spec.mbxs) {
        Runtime::MbxPool pool;
        const int nodes = std::clamp(m.nodes, 1, 64);
        for (int n = 0; n < nodes; ++n) {
            pool.nodes.push_back(std::make_unique<T_MSG_PRI>());
            pool.free.push_back(pool.nodes.back().get());
        }
        rt->mbx_pools.push_back(std::move(pool));
    }
    INT max_msz = 1;
    for (const MbfSpec& m : spec.mbfs) {
        max_msz = std::max(max_msz, std::clamp(m.maxmsz, 1, 1 << 12));
    }
    rt->task_rt.resize(spec.tasks.size());
    for (std::size_t i = 0; i < spec.tasks.size(); ++i) {
        auto& trt = rt->task_rt[i];
        trt.snd_buf.assign(static_cast<std::size_t>(max_msz), 0);
        for (std::size_t b = 0; b < trt.snd_buf.size(); ++b) {
            trt.snd_buf[b] = static_cast<std::uint8_t>(0x40u + i + b);
        }
        trt.rcv_buf.assign(static_cast<std::size_t>(max_msz), 0);
    }

    // Instantiate the graph in one shot; the interpreter addresses
    // objects by raw ID, so ownership goes straight back to the kernel.
    api::System sys(tk);
    auto handles = api::instantiate(sys, build_system_spec(rt));
    if (!handles.ok()) {
        sysc::report(sysc::Severity::fatal, "fuzz",
                     std::string("FuzzSpec instantiation failed: ") +
                         api::er_describe(handles.er()));
    }
    handles->release_all();
    for (const auto& h : handles->tasks) rt->tasks.push_back(h.id());
    for (const auto& h : handles->semaphores) rt->sems.push_back(h.id());
    for (const auto& h : handles->eventflags) rt->flgs.push_back(h.id());
    for (const auto& h : handles->mutexes) rt->mtxs.push_back(h.id());
    for (const auto& h : handles->mailboxes) rt->mbxs.push_back(h.id());
    for (const auto& h : handles->msgbufs) rt->mbfs.push_back(h.id());
    for (const auto& h : handles->fixed_pools) rt->mpfs.push_back(h.id());
    for (const auto& h : handles->var_pools) rt->mpls.push_back(h.id());
    for (const auto& h : handles->cyclics) rt->cycs.push_back(h.id());
    for (const auto& h : handles->alarms) rt->alms.push_back(h.id());
    rt->intvecs = handles->interrupts;
}

}  // namespace

// ============================================================================
// Scenario construction
// ============================================================================

BuiltScenario build_scenario(const FuzzSpec& spec, bool with_oracle) {
    return build_scenario(spec, with_oracle, WorkloadHooks{}, nullptr);
}

BuiltScenario build_scenario(const FuzzSpec& spec, bool with_oracle,
                             WorkloadHooks hooks,
                             std::function<void(Simulation&)> attach) {
    BuiltScenario built;
    built.oracle = std::make_shared<OracleReport>();
    auto spec_ptr = std::make_shared<const FuzzSpec>(spec);
    auto hooks_ptr = std::make_shared<const WorkloadHooks>(std::move(hooks));
    // Slot shared between workload (which creates the oracle inside the
    // simulation) and the check predicate (which harvests it). Weak: the
    // Simulation's retain() is the owning reference, so the oracle dies
    // (and detaches) before the kernel stack it observes.
    auto oracle_slot = std::make_shared<std::weak_ptr<InvariantOracle>>();

    ScenarioSpec& sc = built.scenario;
    sc.name = spec.scenario_name();
    sc.seed = spec.seed;
    sc.duration = Time::us(static_cast<std::uint64_t>(spec.duration_ms) * 1000);
    sc.config.tick = Time::us(spec.tick_us);
    sc.config.policy = spec.round_robin ? TKernel::SchedPolicy::round_robin
                                        : TKernel::SchedPolicy::priority_preemptive;
    sc.workload = [spec_ptr, hooks_ptr, oracle_slot, with_oracle,
                   attach](Simulation& sim, const ScenarioSpec&) {
        auto rt = std::make_shared<Runtime>();
        rt->tk = &sim.os();
        rt->spec = spec_ptr;
        rt->hooks = *hooks_ptr;
        sim.set_user_main([rt] { setup_workload(rt); });
        sim.retain(rt);
        if (with_oracle) {
            auto oracle = std::make_shared<InvariantOracle>(sim.os());
            sim.retain(oracle);
            *oracle_slot = oracle;
        }
        if (attach) {
            attach(sim);
        }
    };
    std::shared_ptr<OracleReport> report = built.oracle;
    sc.check = [oracle_slot, report](Simulation&, const ScenarioSpec&) {
        std::shared_ptr<InvariantOracle> oracle = oracle_slot->lock();
        if (oracle == nullptr) {
            return true;
        }
        oracle->final_check();
        report->ran = true;
        report->events = oracle->events_seen();
        report->violation_count = oracle->violation_count();
        report->violations = oracle->violations();
        return oracle->ok();
    };
    return built;
}

// ============================================================================
// Differential execution
// ============================================================================

const char* SpecVerdict::kind() const {
    if (sim_error) {
        return "sim-error";
    }
    if (violation_count > 0) {
        return "invariant";
    }
    if (mismatch) {
        return "mismatch";
    }
    return "ok";
}

std::string SpecVerdict::detail() const {
    if (sim_error) {
        return error;
    }
    if (violation_count > 0) {
        std::string d;
        for (const std::string& v : violations) {
            if (!d.empty()) {
                d += "; ";
            }
            d += v;
        }
        return d;
    }
    if (mismatch) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "serial fingerprint 0x%016llx != parallel 0x%016llx",
                      static_cast<unsigned long long>(serial_fingerprint),
                      static_cast<unsigned long long>(parallel_fingerprint));
        return buf;
    }
    return "";
}

namespace {

void absorb_leg(SpecVerdict& v, const ScenarioResult& r, const OracleReport& o) {
    if (!r.passed && o.violation_count == 0 && !r.error.empty() &&
        r.error != check_failed_error) {
        v.sim_error = true;
        if (v.error.empty()) {
            v.error = r.error;
        }
    }
    v.violation_count += o.violation_count;
    for (const std::string& s : o.violations) {
        if (v.violations.size() < 32) {
            v.violations.push_back(s);
        }
    }
}

}  // namespace

SpecVerdict run_spec_differential(const FuzzSpec& spec) {
    SpecVerdict v;

    BuiltScenario serial = build_scenario(spec);
    const ScenarioResult rs = run_scenario(serial.scenario);
    v.serial_fingerprint = rs.fingerprint;
    absorb_leg(v, rs, *serial.oracle);

    // Parallel leg: same spec executed by a worker thread of the batch
    // runner (thread pool of 2 so the scenario really migrates off the
    // calling thread).
    BuiltScenario par = build_scenario(spec);
    const BatchReport pr =
        ScenarioRunner(ScenarioRunner::Options{2}).run({par.scenario});
    v.parallel_fingerprint = pr.results.at(0).fingerprint;
    absorb_leg(v, pr.results.at(0), *par.oracle);

    v.mismatch = v.serial_fingerprint != v.parallel_fingerprint;
    return v;
}

// ============================================================================
// Minimization
// ============================================================================

namespace {

enum class RefClass { none, task, sem, flg, mtx, mbx, mbf, mpf, mpl, cyc, alm, intv };

RefClass ref_class(OpKind k) {
    switch (k) {
        case OpKind::wakeup:
        case OpKind::can_wup:
        case OpKind::rel_wai:
        case OpKind::suspend:
        case OpKind::resume:
        case OpKind::frsm:
        case OpKind::chg_pri:
        case OpKind::sta_tsk:
        case OpKind::ter_tsk:
        case OpKind::ras_tex:
            return RefClass::task;
        case OpKind::sem_wait:
        case OpKind::sem_signal:
            return RefClass::sem;
        case OpKind::flg_set:
        case OpKind::flg_clr:
        case OpKind::flg_wait:
            return RefClass::flg;
        case OpKind::mtx_lock:
        case OpKind::mtx_unlock:
            return RefClass::mtx;
        case OpKind::mbx_send:
        case OpKind::mbx_recv:
            return RefClass::mbx;
        case OpKind::mbf_send:
        case OpKind::mbf_recv:
            return RefClass::mbf;
        case OpKind::mpf_get:
        case OpKind::mpf_rel:
            return RefClass::mpf;
        case OpKind::mpl_get:
        case OpKind::mpl_rel:
            return RefClass::mpl;
        case OpKind::cyc_start:
        case OpKind::cyc_stop:
            return RefClass::cyc;
        case OpKind::alm_start:
        case OpKind::alm_stop:
            return RefClass::alm;
        case OpKind::raise_int:
            return RefClass::intv;
        default:
            return RefClass::none;
    }
}

/// After removing instance `idx` of `cls`, drop ops that referenced it
/// and shift higher indices down.
void remap_ops(std::vector<FuzzOp>& ops, RefClass cls, std::int32_t idx) {
    std::vector<FuzzOp> out;
    out.reserve(ops.size());
    for (FuzzOp op : ops) {
        if (ref_class(op.kind) == cls) {
            if (op.a == idx) {
                continue;
            }
            if (op.a > idx) {
                --op.a;
            }
        }
        out.push_back(op);
    }
    ops = std::move(out);
}

void remap_spec(FuzzSpec& spec, RefClass cls, std::int32_t idx) {
    for (TaskSpec& t : spec.tasks) {
        remap_ops(t.ops, cls, idx);
    }
    for (CycSpec& c : spec.cycs) {
        remap_ops(c.ops, cls, idx);
    }
    for (AlmSpec& a : spec.alms) {
        remap_ops(a.ops, cls, idx);
    }
    for (IntSpec& v : spec.ints) {
        remap_ops(v.ops, cls, idx);
    }
}

template <typename T>
FuzzSpec without(const FuzzSpec& spec, std::vector<T> FuzzSpec::*member,
                 RefClass cls, std::size_t idx) {
    FuzzSpec s = spec;
    auto& vec = s.*member;
    vec.erase(vec.begin() + static_cast<std::ptrdiff_t>(idx));
    remap_spec(s, cls, static_cast<std::int32_t>(idx));
    return s;
}

}  // namespace

FuzzSpec minimize_spec(const FuzzSpec& spec, int budget) {
    FuzzSpec best = spec;
    int runs = 0;
    const auto still_fails = [&runs, budget](const FuzzSpec& candidate) {
        if (runs >= budget) {
            return false;
        }
        ++runs;
        return !run_spec_differential(candidate).ok();
    };
    if (!still_fails(best)) {
        return best;  // flaky or budget 0: keep the original
    }

    bool changed = true;
    while (changed && runs < budget) {
        changed = false;

        // 1. Whole structural units, largest first.
        const auto try_drop = [&](auto member, RefClass cls, std::size_t count,
                                  std::size_t keep_at_least) {
            for (std::size_t i = count; i-- > 0 && runs < budget;) {
                if ((best.*member).size() <= keep_at_least) {
                    return;
                }
                FuzzSpec candidate = without(best, member, cls, i);
                if (still_fails(candidate)) {
                    best = std::move(candidate);
                    changed = true;
                }
            }
        };
        try_drop(&FuzzSpec::tasks, RefClass::task, best.tasks.size(), 1);
        try_drop(&FuzzSpec::cycs, RefClass::cyc, best.cycs.size(), 0);
        try_drop(&FuzzSpec::alms, RefClass::alm, best.alms.size(), 0);
        try_drop(&FuzzSpec::ints, RefClass::intv, best.ints.size(), 0);
        try_drop(&FuzzSpec::sems, RefClass::sem, best.sems.size(), 0);
        try_drop(&FuzzSpec::flgs, RefClass::flg, best.flgs.size(), 0);
        try_drop(&FuzzSpec::mtxs, RefClass::mtx, best.mtxs.size(), 0);
        try_drop(&FuzzSpec::mbxs, RefClass::mbx, best.mbxs.size(), 0);
        try_drop(&FuzzSpec::mbfs, RefClass::mbf, best.mbfs.size(), 0);
        try_drop(&FuzzSpec::mpfs, RefClass::mpf, best.mpfs.size(), 0);
        try_drop(&FuzzSpec::mpls, RefClass::mpl, best.mpls.size(), 0);

        // 2. Individual ops from task programs (back to front).
        for (std::size_t t = 0; t < best.tasks.size() && runs < budget; ++t) {
            for (std::size_t j = best.tasks[t].ops.size(); j-- > 0 && runs < budget;) {
                FuzzSpec candidate = best;
                auto& ops = candidate.tasks[t].ops;
                ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(j));
                if (still_fails(candidate)) {
                    best = std::move(candidate);
                    changed = true;
                }
            }
        }
        // 3. Shorter run.
        if (runs < budget && best.duration_ms > 10) {
            FuzzSpec candidate = best;
            candidate.duration_ms /= 2;
            if (still_fails(candidate)) {
                best = std::move(candidate);
                changed = true;
            }
        }
    }
    return best;
}

// ============================================================================
// Repro files
// ============================================================================

std::string make_repro_json(const FuzzSpec& spec, const std::string& kind,
                            const std::string& detail, bool minimized) {
    Json j = Json::object();
    j.set("rtk_fuzz_repro", Json::number(1));
    j.set("seed", Json::number(spec.seed));
    j.set("minimized", Json::boolean(minimized));
    Json f = Json::object();
    f.set("kind", Json::string(kind));
    f.set("detail", Json::string(detail));
    j.set("failure", std::move(f));
    j.set("spec", spec.to_json());
    return j.dump(2) + "\n";
}

bool parse_repro_json(const std::string& text, FuzzSpec& out, std::string* error) {
    Json j;
    if (!Json::parse(text, j, error)) {
        return false;
    }
    const Json& spec_node = j.has("spec") ? j.at("spec") : j;
    return FuzzSpec::from_json(spec_node, out, error);
}

// ============================================================================
// Campaign
// ============================================================================

std::string FuzzReport::to_json() const {
    Json j = Json::object();
    j.set("scenarios", Json::number(scenarios));
    j.set("runs", Json::number(runs));
    j.set("oracle_events", Json::number(oracle_events));
    j.set("mismatches", Json::number(mismatches));
    j.set("violations", Json::number(violations));
    j.set("sim_errors", Json::number(sim_errors));
    j.set("ok", Json::boolean(ok()));
    Json fails = Json::array();
    for (const FuzzFailure& f : failures) {
        Json o = Json::object();
        o.set("seed", Json::number(f.seed));
        o.set("scenario", Json::string(f.scenario));
        o.set("kind", Json::string(f.kind));
        o.set("detail", Json::string(f.detail));
        o.set("repro_path", Json::string(f.repro_path));
        o.set("trace_path", Json::string(f.trace_path));
        fails.push(std::move(o));
    }
    j.set("failures", std::move(fails));
    return j.dump(2) + "\n";
}

FuzzReport run_fuzz_campaign(const FuzzOptions& opts) {
    const auto start = std::chrono::steady_clock::now();
    FuzzReport report;

    // Generate the scenario block: every seed, under one or both policies.
    std::vector<FuzzSpec> specs;
    for (std::size_t i = 0; i < opts.num_seeds; ++i) {
        FuzzSpec spec = generate_spec(opts.base_seed + i, opts.params);
        if (opts.both_policies) {
            spec.round_robin = false;
            specs.push_back(spec);
            spec.round_robin = true;
            specs.push_back(spec);
        } else {
            specs.push_back(std::move(spec));
        }
    }
    report.scenarios = specs.size();

    // Serial leg.
    std::vector<BuiltScenario> serial;
    serial.reserve(specs.size());
    std::vector<ScenarioSpec> serial_specs;
    serial_specs.reserve(specs.size());
    for (const FuzzSpec& s : specs) {
        serial.push_back(build_scenario(s));
        serial_specs.push_back(serial.back().scenario);
    }
    const BatchReport serial_report =
        ScenarioRunner(ScenarioRunner::Options{1}).run(serial_specs);

    // Parallel leg (fresh oracle slots).
    unsigned threads = opts.parallel_threads;
    if (threads == 0) {
        threads = std::max(2u, std::min(std::thread::hardware_concurrency(), 8u));
    }
    std::vector<BuiltScenario> parallel;
    parallel.reserve(specs.size());
    std::vector<ScenarioSpec> parallel_specs;
    parallel_specs.reserve(specs.size());
    for (const FuzzSpec& s : specs) {
        parallel.push_back(build_scenario(s));
        parallel_specs.push_back(parallel.back().scenario);
    }
    const BatchReport parallel_report =
        ScenarioRunner(ScenarioRunner::Options{threads}).run(parallel_specs);

    report.runs = 2 * specs.size();

    campaign::JsonlAppender store;
    if (!opts.store_dir.empty()) {
        std::string store_error;
        if (!store.open(opts.store_dir + "/results.jsonl",
                        /*flush_every=*/8, &store_error)) {
            std::fprintf(stderr, "fuzz campaign: store disabled: %s\n",
                         store_error.c_str());
        }
    }

    for (std::size_t i = 0; i < specs.size(); ++i) {
        SpecVerdict v;
        v.serial_fingerprint = serial_report.results[i].fingerprint;
        v.parallel_fingerprint = parallel_report.results[i].fingerprint;
        absorb_leg(v, serial_report.results[i], *serial[i].oracle);
        absorb_leg(v, parallel_report.results[i], *parallel[i].oracle);
        v.mismatch = v.serial_fingerprint != v.parallel_fingerprint;
        report.oracle_events += serial[i].oracle->events;
        if (store.is_open()) {
            store.append(
                campaign::fuzz_result_record(i, specs[i], v).dump(-1));
        }
        if (v.ok()) {
            continue;
        }
        if (v.sim_error) {
            ++report.sim_errors;
        }
        report.violations += v.violation_count;
        if (v.mismatch) {
            ++report.mismatches;
        }

        FuzzFailure fail;
        fail.seed = specs[i].seed;
        fail.scenario = specs[i].scenario_name();
        fail.kind = v.kind();
        fail.detail = v.detail();
        FuzzSpec repro_spec = specs[i];
        bool minimized = false;
        if (opts.minimize) {
            FuzzSpec smaller = minimize_spec(specs[i]);
            minimized = !(smaller == specs[i]);
            repro_spec = std::move(smaller);
        }
        fail.repro_json = make_repro_json(repro_spec, fail.kind, fail.detail,
                                          minimized);
        if (!opts.repro_dir.empty()) {
            const std::string stem = opts.repro_dir + "/repro_seed" +
                                     std::to_string(specs[i].seed) +
                                     (specs[i].round_robin ? "_rr" : "_pp");
            fail.repro_path = stem + ".json";
            if (!sysc::write_file_atomic(fail.repro_path, fail.repro_json)) {
                fail.repro_path.clear();
            }
            if (opts.trace_failures) {
                // One serial traced re-run of the (minimized) failing
                // spec: the .rtktrace that lands beside the repro JSON
                // is what a developer opens first.
                BuiltScenario rerun = build_scenario(repro_spec);
                rerun.scenario.trace.enabled = true;
                rerun.scenario.trace.path = stem + ".rtktrace";
                const ScenarioResult rr = run_scenario(rerun.scenario);
                fail.trace_path = rr.trace_path;
            }
        }
        report.failures.push_back(std::move(fail));
    }
    if (store.is_open() && !store.close()) {
        std::fprintf(stderr, "fuzz campaign: store close failed: %s\n",
                     store.path().c_str());
    }

    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return report;
}

}  // namespace rtk::harness::fuzz
