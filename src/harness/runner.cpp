#include "harness/runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <thread>

#include "api/json.hpp"
#include "sysc/fsio.hpp"

namespace rtk::harness {

// ---- BatchReport ------------------------------------------------------------

std::size_t BatchReport::passed() const {
    std::size_t n = 0;
    for (const auto& r : results) {
        n += r.passed ? 1 : 0;
    }
    return n;
}

std::size_t BatchReport::failed() const {
    return results.size() - passed();
}

double BatchReport::scenarios_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(results.size()) / wall_seconds
                              : 0.0;
}

double BatchReport::total_host_seconds() const {
    double s = 0.0;
    for (const auto& r : results) {
        s += r.host_seconds;
    }
    return s;
}

std::size_t BatchReport::traced() const {
    std::size_t n = 0;
    for (const auto& r : results) {
        n += r.traced ? 1 : 0;
    }
    return n;
}

trace::Metrics BatchReport::aggregate_metrics() const {
    trace::Metrics agg;
    for (const auto& r : results) {
        if (r.traced) {
            agg.merge_counters(r.metrics);
        }
    }
    return agg;
}

namespace {

std::string fmt_hex64(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(v));
    return buf;
}

api::Json result_to_json(const ScenarioResult& r) {
    using api::Json;
    Json j = Json::object();
    j.set("name", Json::string(r.name));
    j.set("seed", Json::number(r.seed));
    j.set("passed", Json::boolean(r.passed));
    j.set("hung", Json::boolean(r.hung));
    j.set("error", Json::string(r.error));
    j.set("sim_time_ms", Json::number_real(r.sim_time.to_ms()));
    j.set("host_seconds", Json::number_real(r.host_seconds));
    j.set("dispatches", Json::number(r.stats.dispatches));
    j.set("preemptions", Json::number(r.stats.preemptions));
    j.set("interrupts", Json::number(r.stats.interrupts));
    j.set("cpu_load", Json::number_real(r.stats.cpu_load));
    j.set("total_cet_ms", Json::number_real(r.stats.total_cet.to_ms()));
    j.set("total_cee_mj", Json::number_real(r.stats.total_cee_nj * 1e-6));
    j.set("gantt_segments", Json::number(r.gantt_segments));
    j.set("gantt_markers", Json::number(r.gantt_markers));
    j.set("fingerprint", Json::string(fmt_hex64(r.fingerprint)));
    if (r.traced) {
        Json t = Json::object();
        t.set("path", Json::string(r.trace_path));
        t.set("events", Json::number(r.trace_events));
        t.set("dropped", Json::number(r.trace_dropped));
        t.set("metrics", r.metrics.to_json(/*with_tasks=*/false));
        j.set("trace", std::move(t));
    }
    return j;
}

}  // namespace

std::string BatchReport::to_json() const {
    using api::Json;
    Json batch = Json::object();
    batch.set("scenarios", Json::number(results.size()));
    batch.set("threads", Json::number(threads));
    batch.set("passed", Json::number(passed()));
    batch.set("failed", Json::number(failed()));
    batch.set("error", Json::string(error));
    batch.set("wall_seconds", Json::number_real(wall_seconds));
    batch.set("total_host_seconds", Json::number_real(total_host_seconds()));
    batch.set("scenarios_per_second", Json::number_real(scenarios_per_second()));
    if (traced() > 0) {
        Json t = Json::object();
        t.set("traced_runs", Json::number(traced()));
        t.set("metrics", aggregate_metrics().to_json(/*with_tasks=*/false));
        batch.set("trace", std::move(t));
    }
    Json res = Json::array();
    for (const ScenarioResult& r : results) {
        res.push(result_to_json(r));
    }
    Json doc = Json::object();
    doc.set("batch", std::move(batch));
    doc.set("results", std::move(res));
    return doc.dump(2) + "\n";
}

bool BatchReport::write_json(const std::string& path) const {
    return sysc::write_file_atomic(path, to_json());
}

// ---- ScenarioRunner ---------------------------------------------------------

unsigned ScenarioRunner::effective_threads(std::size_t n) const {
    unsigned t = opts_.threads;
    if (t == 0) {
        t = std::thread::hardware_concurrency();
        if (t == 0) {
            t = 1;
        }
    }
    if (n < t) {
        t = n == 0 ? 1 : static_cast<unsigned>(n);
    }
    return t;
}

BatchReport ScenarioRunner::run(const std::vector<ScenarioSpec>& specs) const {
    BatchReport report;
    report.results.resize(specs.size());
    report.threads = effective_threads(specs.size());
    const auto start = std::chrono::steady_clock::now();

    if (report.threads <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
            report.results[i] = run_scenario(specs[i]);
        }
    } else {
        // Work-stealing by atomic index: scenario i may run on any worker,
        // but lands in results[i]; no two workers ever share a slot or a
        // Simulation, so the only cross-thread traffic is the index.
        std::atomic<std::size_t> next{0};
        auto worker = [&specs, &report, &next] {
            for (;;) {
                const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= specs.size()) {
                    return;
                }
                report.results[i] = run_scenario(specs[i]);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(report.threads);
        try {
            for (unsigned t = 0; t < report.threads; ++t) {
                pool.emplace_back(worker);
            }
        } catch (const std::exception& e) {
            // Thread creation failed mid-loop: joining the vector of
            // already-started workers (instead of letting it unwind
            // joinable) keeps the process alive, and work-stealing means
            // they still drain the whole batch.
            report.error = std::string("thread pool creation failed: ") + e.what();
            report.threads =
                pool.empty() ? 1 : static_cast<unsigned>(pool.size());
        }
        for (auto& t : pool) {
            t.join();
        }
        if (pool.empty()) {
            worker();  // serial fallback on the calling thread
        }
    }

    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return report;
}

}  // namespace rtk::harness
