#include "harness/runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

namespace rtk::harness {

// ---- BatchReport ------------------------------------------------------------

std::size_t BatchReport::passed() const {
    std::size_t n = 0;
    for (const auto& r : results) {
        n += r.passed ? 1 : 0;
    }
    return n;
}

std::size_t BatchReport::failed() const {
    return results.size() - passed();
}

double BatchReport::scenarios_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(results.size()) / wall_seconds
                              : 0.0;
}

double BatchReport::total_host_seconds() const {
    double s = 0.0;
    for (const auto& r : results) {
        s += r.host_seconds;
    }
    return s;
}

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

std::string fmt_hex64(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(v));
    return buf;
}

}  // namespace

std::string BatchReport::to_json() const {
    std::ostringstream out;
    out << "{\n  \"batch\": {\n"
        << "    \"scenarios\": " << results.size() << ",\n"
        << "    \"threads\": " << threads << ",\n"
        << "    \"passed\": " << passed() << ",\n"
        << "    \"failed\": " << failed() << ",\n"
        << "    \"wall_seconds\": " << fmt_double(wall_seconds) << ",\n"
        << "    \"total_host_seconds\": " << fmt_double(total_host_seconds()) << ",\n"
        << "    \"scenarios_per_second\": " << fmt_double(scenarios_per_second())
        << "\n  },\n  \"results\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult& r = results[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\"name\": \"" << json_escape(r.name) << "\""
            << ", \"seed\": " << r.seed
            << ", \"passed\": " << (r.passed ? "true" : "false")
            << ", \"error\": \"" << json_escape(r.error) << "\""
            << ", \"sim_time_ms\": " << fmt_double(r.sim_time.to_ms())
            << ", \"host_seconds\": " << fmt_double(r.host_seconds)
            << ", \"dispatches\": " << r.stats.dispatches
            << ", \"preemptions\": " << r.stats.preemptions
            << ", \"interrupts\": " << r.stats.interrupts
            << ", \"cpu_load\": " << fmt_double(r.stats.cpu_load)
            << ", \"total_cet_ms\": " << fmt_double(r.stats.total_cet.to_ms())
            << ", \"total_cee_mj\": " << fmt_double(r.stats.total_cee_nj * 1e-6)
            << ", \"gantt_segments\": " << r.gantt_segments
            << ", \"gantt_markers\": " << r.gantt_markers
            << ", \"fingerprint\": \"" << fmt_hex64(r.fingerprint) << "\"}";
    }
    out << "\n  ]\n}\n";
    return out.str();
}

bool BatchReport::write_json(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
        return false;
    }
    out << to_json();
    return static_cast<bool>(out);
}

// ---- ScenarioRunner ---------------------------------------------------------

unsigned ScenarioRunner::effective_threads(std::size_t n) const {
    unsigned t = opts_.threads;
    if (t == 0) {
        t = std::thread::hardware_concurrency();
        if (t == 0) {
            t = 1;
        }
    }
    if (n < t) {
        t = n == 0 ? 1 : static_cast<unsigned>(n);
    }
    return t;
}

BatchReport ScenarioRunner::run(const std::vector<ScenarioSpec>& specs) const {
    BatchReport report;
    report.results.resize(specs.size());
    report.threads = effective_threads(specs.size());
    const auto start = std::chrono::steady_clock::now();

    if (report.threads <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
            report.results[i] = run_scenario(specs[i]);
        }
    } else {
        // Work-stealing by atomic index: scenario i may run on any worker,
        // but lands in results[i]; no two workers ever share a slot or a
        // Simulation, so the only cross-thread traffic is the index.
        std::atomic<std::size_t> next{0};
        auto worker = [&specs, &report, &next] {
            for (;;) {
                const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= specs.size()) {
                    return;
                }
                report.results[i] = run_scenario(specs[i]);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(report.threads);
        for (unsigned t = 0; t < report.threads; ++t) {
            pool.emplace_back(worker);
        }
        for (auto& t : pool) {
            t.join();
        }
    }

    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return report;
}

}  // namespace rtk::harness
