#include "harness/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "corpus/index.hpp"
#include "corpus/scenario_file.hpp"
#include "harness/campaign_store.hpp"
#include "harness/corpus_bridge.hpp"
#include "harness/fuzz_rng.hpp"
#include "sysc/fsio.hpp"

namespace rtk::harness::campaign {

namespace fs = std::filesystem;

namespace {

bool fail(std::string* error, const std::string& what) {
    if (error != nullptr) {
        *error = what;
    }
    return false;
}

std::string fmt_hex64(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/// Deterministic truncation for free-text fields of a record: byte
/// payloads must not depend on how verbose one host's error string got.
std::string cap_text(std::string s, std::size_t max = 400) {
    if (s.size() > max) {
        s.resize(max);
        s += "...";
    }
    return s;
}

}  // namespace

// ---- manifest ---------------------------------------------------------------

const char* to_string(Kind k) {
    return k == Kind::fault ? "fault" : "fuzz";
}

bool kind_from_string(const std::string& s, Kind& out) {
    if (s == "fuzz") {
        out = Kind::fuzz;
        return true;
    }
    if (s == "fault") {
        out = Kind::fault;
        return true;
    }
    return false;
}

std::size_t Manifest::total_jobs() const {
    if (kind == Kind::fault) {
        return corpus * injections_per_workload;
    }
    return seeds * (both_policies ? 2 : 1);
}

Json Manifest::to_json() const {
    Json j = Json::object();
    j.set("rtk_campaign", Json::number(1));
    j.set("name", Json::string(name));
    j.set("kind", Json::string(to_string(kind)));
    j.set("base_seed", Json::number(base_seed));
    j.set("seeds", Json::number(seeds));
    j.set("both_policies", Json::boolean(both_policies));
    j.set("corpus", Json::number(corpus));
    j.set("injections_per_workload", Json::number(injections_per_workload));
    j.set("delta_budget", Json::number(delta_budget));
    j.set("corpus_dir", Json::string(corpus_dir));
    j.set("claim_batch", Json::number(claim_batch));
    j.set("flush_every", Json::number(flush_every));
    return j;
}

bool Manifest::from_json(const Json& j, Manifest& out, std::string* error) {
    if (!j.is_object() || j.at("rtk_campaign").as_u64() != 1) {
        return fail(error, "not a campaign manifest");
    }
    Manifest m;
    m.name = j.at("name").as_string();
    if (!kind_from_string(j.at("kind").as_string(), m.kind)) {
        return fail(error, "unknown campaign kind '" + j.at("kind").as_string() +
                               "'");
    }
    m.base_seed = j.at("base_seed").as_u64(1);
    m.seeds = static_cast<std::size_t>(j.at("seeds").as_u64(m.seeds));
    m.both_policies = j.at("both_policies").as_bool(true);
    m.corpus = static_cast<std::size_t>(j.at("corpus").as_u64(m.corpus));
    m.injections_per_workload = static_cast<std::size_t>(
        j.at("injections_per_workload").as_u64(m.injections_per_workload));
    m.delta_budget = j.at("delta_budget").as_u64(m.delta_budget);
    m.corpus_dir = j.at("corpus_dir").as_string();
    m.claim_batch = static_cast<std::size_t>(
        j.at("claim_batch").as_u64(m.claim_batch));
    m.flush_every = static_cast<std::size_t>(
        j.at("flush_every").as_u64(m.flush_every));
    if (m.claim_batch == 0) {
        m.claim_batch = 1;
    }
    out = std::move(m);
    return true;
}

// ---- jobs -------------------------------------------------------------------

std::vector<Job> make_jobs(const Manifest& m) {
    std::vector<Job> jobs;
    jobs.reserve(m.total_jobs());
    if (m.kind == Kind::fuzz) {
        // Same ordering as run_fuzz_campaign: per seed, the
        // priority-preemptive leg first, then round-robin.
        for (std::size_t i = 0; i < m.seeds; ++i) {
            Job job;
            job.id = jobs.size();
            job.seed = m.base_seed + i;
            job.round_robin = false;
            jobs.push_back(job);
            if (m.both_policies) {
                job.id = jobs.size();
                job.round_robin = true;
                jobs.push_back(job);
            }
        }
    } else {
        for (std::size_t w = 0; w < m.corpus; ++w) {
            for (std::size_t j = 0; j < m.injections_per_workload; ++j) {
                Job job;
                job.id = jobs.size();
                job.workload = w;
                job.injection = j;
                jobs.push_back(job);
            }
        }
    }
    return jobs;
}

// ---- execution --------------------------------------------------------------

namespace {

/// Read and lower one corpus scenario file into a fault workload.
bool corpus_workload_spec(const std::string& dir, const std::string& file,
                          fuzz::FuzzSpec& out, std::string& error) {
    const std::string path = dir + "/" + file;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    corpus::ScenarioFile scenario;
    if (!corpus::ScenarioFile::parse(text.str(), scenario, &error)) {
        error = file + ": " + error;
        return false;
    }
    out = corpus_to_fuzz_spec(scenario);
    return true;
}

}  // namespace

const std::pair<fuzz::FuzzSpec, fault::BaselineProfile>& BaselineCache::get(
    const Manifest& m, std::uint64_t w) {
    auto it = cache_.find(w);
    if (it != cache_.end()) {
        return it->second;
    }
    fuzz::FuzzSpec spec;
    fault::BaselineProfile base;
    std::string error;
    if (m.corpus_dir.empty()) {
        spec = fuzz::generate_spec(m.base_seed + w);
        base = fault::profile_baseline(spec, m.delta_budget);
    } else {
        if (!corpus_loaded_) {
            corpus_loaded_ = true;
            corpus::CorpusIndex index;
            if (!corpus::CorpusIndex::load(m.corpus_dir, index,
                                           &corpus_error_)) {
                corpus_files_.clear();
            } else {
                // The index is the deterministic workload order: sorted
                // by file path, independent of directory iteration.
                index.sort();
                for (const corpus::IndexEntry& e : index.entries) {
                    corpus_files_.emplace_back(e.file, e.family);
                }
                if (corpus_files_.empty()) {
                    corpus_error_ = "corpus index has no entries";
                }
            }
        }
        if (corpus_files_.empty()) {
            base.ok = false;
            base.error = "corpus: " + corpus_error_;
        } else {
            const auto& [file, family] =
                corpus_files_[static_cast<std::size_t>(w) %
                              corpus_files_.size()];
            if (!corpus_workload_spec(m.corpus_dir, file, spec, error)) {
                base.ok = false;
                base.error = "corpus: " + error;
            } else {
                // Stamp a per-workload seed so result records and fault
                // scenario names stay distinct across entries.
                spec.seed = m.base_seed + w;
                base = fault::profile_baseline(spec, m.delta_budget);
            }
        }
    }
    it = cache_.emplace(w, std::make_pair(std::move(spec), std::move(base)))
             .first;
    return it->second;
}

Json fuzz_result_record(std::uint64_t id, const fuzz::FuzzSpec& spec,
                        const fuzz::SpecVerdict& v) {
    Json r = Json::object();
    r.set("id", Json::number(id));
    r.set("kind", Json::string("fuzz"));
    r.set("seed", Json::number(spec.seed));
    r.set("rr", Json::boolean(spec.round_robin));
    r.set("ok", Json::boolean(v.ok()));
    r.set("verdict", Json::string(v.kind()));
    r.set("serial_fp", Json::string(fmt_hex64(v.serial_fingerprint)));
    r.set("parallel_fp", Json::string(fmt_hex64(v.parallel_fingerprint)));
    r.set("violations", Json::number(v.violation_count));
    if (!v.ok()) {
        r.set("detail", Json::string(cap_text(v.detail())));
    }
    return r;
}

Json fault_result_record(std::uint64_t id, const fault::FaultSpec& spec,
                         const fault::InjectionResult& r) {
    Json rec = Json::object();
    rec.set("id", Json::number(id));
    rec.set("kind", Json::string("fault"));
    rec.set("class", Json::string(fault::to_string(spec.cls)));
    rec.set("workload_seed", Json::number(spec.workload.seed));
    rec.set("trigger", Json::number(spec.trigger));
    rec.set("outcome", Json::string(fault::to_string(r.outcome)));
    rec.set("injected", Json::boolean(r.injected));
    rec.set("diverged", Json::boolean(r.diverged));
    rec.set("call", Json::string(r.service_call));
    rec.set("fp", Json::string(fmt_hex64(r.fingerprint)));
    rec.set("base_fp", Json::string(fmt_hex64(r.baseline_fingerprint)));
    rec.set("violations", Json::number(r.oracle_violations));
    if (!r.error.empty()) {
        rec.set("error", Json::string(cap_text(r.error)));
    }
    return rec;
}

namespace {

Json skipped_fault_record(const Job& job, const std::string& reason) {
    Json rec = Json::object();
    rec.set("id", Json::number(job.id));
    rec.set("kind", Json::string("fault"));
    rec.set("skipped", Json::boolean(true));
    rec.set("reason", Json::string(cap_text(reason)));
    return rec;
}

/// The engine's per-job fault sampler: fixed-order draws from a stream
/// seeded only by (manifest, workload, injection) -- unlike the legacy
/// run_fault_campaign sampler, no shared RNG threads through the whole
/// corpus, so any shard can compute any job independently.
fault::FaultSpec make_fault_spec(const Manifest& m, const Job& job,
                                 const fuzz::FuzzSpec& workload,
                                 const fault::BaselineProfile& base,
                                 std::uint64_t space) {
    fault::FaultSpec f;
    f.workload = workload;
    f.cls = fault::all_fault_classes()[job.injection % fault::fault_class_count];
    f.delta_budget = m.delta_budget;
    fuzz::Rng rng(m.base_seed ^ (job.workload * 0x9e3779b97f4a7c15ULL) ^
                  (job.injection * 0xbf58476d1ce4e5b9ULL) ^ 0xfa157ULL);
    const std::uint64_t salt = rng.next_u64();
    f.target = static_cast<std::uint32_t>(rng.below(64));
    f.field = static_cast<std::uint32_t>(rng.below(24));
    f.bit = static_cast<std::uint32_t>(rng.below(64));
    const std::uint64_t praw = rng.next_u64();
    f.trigger = space == 0 ? 0 : salt % space;
    switch (f.cls) {
        case fault::FaultClass::arg_corrupt:
            f.param = static_cast<std::int32_t>(praw % 0xffff) + 1;
            break;
        case fault::FaultClass::irq_drop:
            f.param = static_cast<std::int32_t>(praw % 4);
            break;
        case fault::FaultClass::timer_skew:
            f.param = static_cast<std::int32_t>(praw % 41) - 20;
            if (f.param == 0) {
                f.param = 7;
            }
            break;
        default:
            break;
    }
    return f;
}

}  // namespace

Json run_job(const Manifest& m, const Job& job, BaselineCache& cache) {
    if (m.kind == Kind::fuzz) {
        fuzz::FuzzSpec spec = fuzz::generate_spec(job.seed);
        spec.round_robin = job.round_robin;
        const fuzz::SpecVerdict v = fuzz::run_spec_differential(spec);
        return fuzz_result_record(job.id, spec, v);
    }
    const auto& [workload, base] = cache.get(m, job.workload);
    if (!base.ok) {
        return skipped_fault_record(job, "baseline failed: " + base.error);
    }
    const fault::FaultClass cls =
        fault::all_fault_classes()[job.injection % fault::fault_class_count];
    const std::uint64_t space =
        cls == fault::FaultClass::arg_corrupt ? base.ops : base.events;
    if (space == 0) {
        return skipped_fault_record(job, "no injection sites");
    }
    const fault::FaultSpec f = make_fault_spec(m, job, workload, base, space);
    const fault::InjectionResult r = fault::run_injection(f, base);
    return fault_result_record(job.id, f, r);
}

// ---- directory layout -------------------------------------------------------

std::string manifest_path(const std::string& dir) {
    return dir + "/manifest.json";
}

std::string jobs_path(const std::string& dir) { return dir + "/jobs.jsonl"; }

std::string shards_dir(const std::string& dir) { return dir + "/shards"; }

std::string report_path(const std::string& dir) { return dir + "/report.json"; }

std::string runlist_path(const std::string& dir, unsigned round) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "/round_%03u.list", round);
    return dir + buf;
}

std::string cursor_path(const std::string& runlist) {
    return runlist + ".cursor";
}

std::string shard_store_path(const std::string& dir, unsigned round,
                             unsigned shard) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "/round_%03u_s%u.jsonl", round, shard);
    return shards_dir(dir) + buf;
}

bool init_campaign(const std::string& dir, const Manifest& m,
                   std::string* error) {
    std::error_code ec;
    fs::create_directories(shards_dir(dir), ec);
    if (ec) {
        return fail(error, "cannot create " + shards_dir(dir) + ": " +
                               ec.message());
    }
    if (fs::exists(manifest_path(dir))) {
        return fail(error, dir + " already holds a campaign");
    }
    std::string lines;
    for (const Job& job : make_jobs(m)) {
        Json j = Json::object();
        j.set("id", Json::number(job.id));
        if (m.kind == Kind::fuzz) {
            j.set("seed", Json::number(job.seed));
            j.set("rr", Json::boolean(job.round_robin));
        } else {
            j.set("w", Json::number(job.workload));
            j.set("j", Json::number(job.injection));
        }
        lines += j.dump(-1);
        lines += '\n';
    }
    // Durable: a crash right after submit must still find both files.
    if (!sysc::write_file_atomic(jobs_path(dir), lines, error,
                                 /*durable=*/true)) {
        return false;
    }
    return sysc::write_file_atomic(manifest_path(dir), m.to_json().dump(2) + "\n",
                                   error, /*durable=*/true);
}

bool load_manifest(const std::string& dir, Manifest& out, std::string* error) {
    std::ifstream in(manifest_path(dir), std::ios::binary);
    if (!in) {
        return fail(error, "cannot read " + manifest_path(dir));
    }
    const std::string text{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
    Json j;
    if (!Json::parse(text, j, error)) {
        return false;
    }
    return Manifest::from_json(j, out, error);
}

bool load_jobs(const std::string& dir, std::vector<Job>& out,
               std::string* error) {
    Manifest m;
    if (!load_manifest(dir, m, error)) {
        return false;
    }
    std::vector<Job> jobs;
    for (const Json& j : read_jsonl(jobs_path(dir))) {
        Job job;
        job.id = j.at("id").as_u64();
        job.seed = j.at("seed").as_u64();
        job.round_robin = j.at("rr").as_bool();
        job.workload = j.at("w").as_u64();
        job.injection = j.at("j").as_u64();
        jobs.push_back(job);
    }
    if (jobs.size() != m.total_jobs()) {
        return fail(error, "jobs.jsonl holds " + std::to_string(jobs.size()) +
                               " jobs, manifest expects " +
                               std::to_string(m.total_jobs()));
    }
    out = std::move(jobs);
    return true;
}

// ---- scanning and merging ---------------------------------------------------

bool scan_stores(const std::string& dir, StoreScan& out, std::string* error) {
    StoreScan scan;
    const std::string sdir = shards_dir(dir);
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(sdir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".jsonl") {
            files.push_back(entry.path().string());
        }
    }
    if (ec) {
        return fail(error, "cannot scan " + sdir + ": " + ec.message());
    }
    std::sort(files.begin(), files.end());
    for (const std::string& file : files) {
        ++scan.store_files;
        std::size_t skipped = 0;
        for (Json& rec : read_jsonl(file, &skipped)) {
            const std::uint64_t id = rec.at("id").as_u64();
            if (!scan.records.emplace(id, std::move(rec)).second) {
                ++scan.duplicates;
            }
        }
        scan.skipped_lines += skipped;
    }
    out = std::move(scan);
    return true;
}

Json merged_report(const Manifest& m, const std::vector<Job>& jobs,
                   const StoreScan& scan) {
    constexpr std::size_t max_failures = 200;

    Json campaign = Json::object();
    campaign.set("name", Json::string(m.name));
    campaign.set("kind", Json::string(to_string(m.kind)));
    campaign.set("base_seed", Json::number(m.base_seed));
    campaign.set("jobs", Json::number(jobs.size()));
    campaign.set("completed", Json::number(scan.records.size()));
    campaign.set("complete",
                 Json::boolean(scan.records.size() >= jobs.size()));

    Json totals = Json::object();
    Json coverage = Json::object();
    Json failures = Json::array();
    std::size_t failure_count = 0;

    if (m.kind == Kind::fuzz) {
        std::uint64_t ok = 0, violations = 0;
        std::map<std::string, std::uint64_t> verdicts;
        for (const auto& [id, rec] : scan.records) {
            ok += rec.at("ok").as_bool() ? 1 : 0;
            violations += rec.at("violations").as_u64();
            ++verdicts[rec.at("verdict").as_string()];
            if (!rec.at("ok").as_bool()) {
                ++failure_count;
                if (failures.items().size() < max_failures) {
                    failures.push(rec);
                }
            }
        }
        totals.set("ok", Json::number(ok));
        totals.set("violations", Json::number(violations));
        Json v = Json::object();
        for (const auto& [name, count] : verdicts) {
            v.set(name, Json::number(count));
        }
        totals.set("verdicts", std::move(v));
    } else {
        std::uint64_t injected = 0, diverged = 0, skipped = 0, violations = 0;
        std::map<std::string, std::uint64_t> outcomes;
        std::map<std::string, std::map<std::string, std::uint64_t>> heat;
        for (const auto& [id, rec] : scan.records) {
            if (rec.at("skipped").as_bool()) {
                ++skipped;
                continue;
            }
            injected += rec.at("injected").as_bool() ? 1 : 0;
            diverged += rec.at("diverged").as_bool() ? 1 : 0;
            violations += rec.at("violations").as_u64();
            const std::string outcome = rec.at("outcome").as_string();
            ++outcomes[outcome];
            ++heat[rec.at("call").as_string()][rec.at("class").as_string()];
            if (outcome != "masked") {
                ++failure_count;
                if (failures.items().size() < max_failures) {
                    failures.push(rec);
                }
            }
        }
        totals.set("injected", Json::number(injected));
        totals.set("diverged", Json::number(diverged));
        totals.set("skipped", Json::number(skipped));
        totals.set("violations", Json::number(violations));
        Json o = Json::object();
        for (const auto& [name, count] : outcomes) {
            o.set(name, Json::number(count));
        }
        totals.set("outcomes", std::move(o));
        for (const auto& [call, row] : heat) {
            Json jrow = Json::object();
            for (const auto& [cls, count] : row) {
                jrow.set(cls, Json::number(count));
            }
            coverage.set(call, std::move(jrow));
        }
    }

    Json doc = Json::object();
    doc.set("rtk_campaign_report", Json::number(1));
    doc.set("campaign", std::move(campaign));
    doc.set("totals", std::move(totals));
    if (m.kind == Kind::fault) {
        doc.set("coverage", std::move(coverage));
    }
    doc.set("failure_count", Json::number(failure_count));
    doc.set("failures", std::move(failures));
    return doc;
}

bool merge_campaign(const std::string& dir, const std::string& out_path,
                    std::string* error, bool* complete) {
    Manifest m;
    if (!load_manifest(dir, m, error)) {
        return false;
    }
    std::vector<Job> jobs;
    if (!load_jobs(dir, jobs, error)) {
        return false;
    }
    StoreScan scan;
    if (!scan_stores(dir, scan, error)) {
        return false;
    }
    if (complete != nullptr) {
        *complete = scan.records.size() >= jobs.size();
    }
    const Json doc = merged_report(m, jobs, scan);
    const std::string path = out_path.empty() ? report_path(dir) : out_path;
    return sysc::write_file_atomic(path, doc.dump(2) + "\n", error);
}

}  // namespace rtk::harness::campaign
