// rtk::Simulation -- the context handle of one complete co-simulation:
// a sysc::Kernel (discrete-event substrate) plus the RTK-Spec TRON
// T-Kernel model (which owns its SIM_API + scheduler stack) built on it.
//
// The handle is what makes the reproduction multi-instance: nothing in it
// touches process-wide state, so any number of Simulations may coexist --
// nested in one thread, or one per worker thread for host-parallel
// scenario sweeps (see harness/runner.hpp). Construction wires the layers
// together explicitly -- every layer takes its sysc::Kernel as a
// constructor argument.
//
//   rtk::Simulation sim;                      // or Simulation(config)
//   sim.set_user_main([&] { ...tk_cre_tsk... });
//   sim.power_on();
//   sim.run_for(sysc::Time::ms(50));
//   auto stats = sim.stats();
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/stats.hpp"
#include "sysc/kernel.hpp"
#include "sysc/time.hpp"
#include "tkernel/kernel.hpp"

namespace rtk {

class Simulation {
public:
    using Config = tkernel::TKernel::Config;

    Simulation() : Simulation(Config{}) {}
    explicit Simulation(const Config& cfg) : os_(kernel_, cfg) {}
    ~Simulation() {
        // Retained objects die in reverse retention order (a vector's own
        // destructor would destroy front-to-back), before os_/kernel_.
        while (!retained_.empty()) {
            retained_.pop_back();
        }
    }

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    // ---- the owned stack ---------------------------------------------------
    /// The discrete-event kernel: pass it to BFM devices, traces, events.
    sysc::Kernel& kernel() { return kernel_; }
    const sysc::Kernel& kernel() const { return kernel_; }
    /// The T-Kernel/OS model (tk_* service calls).
    tkernel::TKernel& os() { return os_; }
    const tkernel::TKernel& os() const { return os_; }
    /// The SIM_API layer underneath the T-Kernel (Gantt, counters, costs).
    sim::SimApi& sim() { return os_.sim(); }
    const sim::SimApi& sim() const { return os_.sim(); }

    // ---- boot & run --------------------------------------------------------
    void set_user_main(std::function<void()> usermain) {
        os_.set_user_main(std::move(usermain));
    }
    void power_on() { os_.power_on(); }
    void run() { kernel_.run(); }
    void run_until(sysc::Time t) { kernel_.run_until(t); }
    void run_for(sysc::Time d) { kernel_.run_for(d); }
    sysc::Time now() const { return kernel_.now(); }

    // ---- inspection --------------------------------------------------------
    sim::SystemStats stats() const { return sim::collect_stats(os_.sim()); }

    /// Keep an auxiliary object (TraceFile, BFM board, widget, ...) alive
    /// for the lifetime of this simulation; destroyed in reverse order of
    /// retention, before the kernel stack.
    void retain(std::shared_ptr<void> obj) { retained_.push_back(std::move(obj)); }

private:
    sysc::Kernel kernel_;
    tkernel::TKernel os_;
    // Declared last so it is destroyed first: retained objects may own
    // processes/events on kernel_ and reference os_. Do not reorder.
    std::vector<std::shared_ptr<void>> retained_;
};

}  // namespace rtk
