#include "harness/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "harness/campaign.hpp"
#include "harness/campaign_store.hpp"
#include "harness/fuzz_rng.hpp"
#include "sim/observer.hpp"
#include "sysc/fsio.hpp"
#include "tkernel/kernel.hpp"
#include "trace/recorder.hpp"

namespace rtk::harness::fault {

// ---- fault classes ----------------------------------------------------------

const FaultClass* all_fault_classes() {
    static const FaultClass classes[fault_class_count] = {
        FaultClass::tcb_bitflip, FaultClass::object_bitflip,
        FaultClass::arg_corrupt, FaultClass::irq_drop,
        FaultClass::irq_dup,     FaultClass::timer_skew,
    };
    return classes;
}

const char* to_string(FaultClass c) {
    switch (c) {
        case FaultClass::tcb_bitflip:
            return "tcb_bitflip";
        case FaultClass::object_bitflip:
            return "object_bitflip";
        case FaultClass::arg_corrupt:
            return "arg_corrupt";
        case FaultClass::irq_drop:
            return "irq_drop";
        case FaultClass::irq_dup:
            return "irq_dup";
        case FaultClass::timer_skew:
            return "timer_skew";
    }
    return "?";
}

bool fault_class_from_string(const std::string& s, FaultClass& out) {
    for (std::size_t i = 0; i < fault_class_count; ++i) {
        const FaultClass c = all_fault_classes()[i];
        if (s == to_string(c)) {
            out = c;
            return true;
        }
    }
    return false;
}

const char* to_string(Outcome o) {
    switch (o) {
        case Outcome::masked:
            return "masked";
        case Outcome::detected:
            return "detected";
        case Outcome::invariant_violated:
            return "invariant_violated";
        case Outcome::hung:
            return "hung";
    }
    return "?";
}

bool outcome_from_string(const std::string& s, Outcome& out) {
    for (std::size_t i = 0; i < outcome_count; ++i) {
        const Outcome o = static_cast<Outcome>(i);
        if (s == to_string(o)) {
            out = o;
            return true;
        }
    }
    return false;
}

// ---- FaultSpec --------------------------------------------------------------

std::string FaultSpec::name() const {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "fault/%s/%llu/t%llu", to_string(cls),
                  static_cast<unsigned long long>(workload.seed),
                  static_cast<unsigned long long>(trigger));
    return buf;
}

Json FaultSpec::to_json() const {
    Json j = Json::object();
    j.set("class", Json::string(to_string(cls)));
    j.set("trigger", Json::number(trigger));
    j.set("target", Json::number(target));
    j.set("field", Json::number(field));
    j.set("bit", Json::number(bit));
    j.set("param", Json::number_signed(param));
    j.set("delta_budget", Json::number(delta_budget));
    j.set("workload", workload.to_json());
    return j;
}

bool FaultSpec::from_json(const Json& j, FaultSpec& out, std::string* error) {
    auto fail = [error](const char* msg) {
        if (error != nullptr) {
            *error = msg;
        }
        return false;
    };
    if (!j.is_object()) {
        return fail("fault spec: not an object");
    }
    FaultSpec f;
    if (!fault_class_from_string(j.at("class").as_string(), f.cls)) {
        return fail("fault spec: unknown class");
    }
    f.trigger = j.at("trigger").as_u64();
    f.target = static_cast<std::uint32_t>(j.at("target").as_u64());
    f.field = static_cast<std::uint32_t>(j.at("field").as_u64());
    f.bit = static_cast<std::uint32_t>(j.at("bit").as_u64());
    f.param = static_cast<std::int32_t>(j.at("param").as_i64());
    f.delta_budget = j.at("delta_budget").as_u64(f.delta_budget);
    std::string spec_error;
    if (!fuzz::FuzzSpec::from_json(j.at("workload"), f.workload, &spec_error)) {
        if (error != nullptr) {
            *error = "fault spec workload: " + spec_error;
        }
        return false;
    }
    out = std::move(f);
    return true;
}

// ---- injection machinery ----------------------------------------------------

/// Shared state of one injection run, written single-threaded from the
/// run's observers/hooks and read after the run completes.
struct InjectionProbe {
    // site (copied from the FaultSpec)
    FaultClass cls = FaultClass::tcb_bitflip;
    std::uint64_t trigger = 0;
    std::uint32_t target = 0;
    std::uint32_t field = 0;
    std::uint32_t bit = 0;
    std::int32_t param = 0;
    bool with_fault = false;

    // run state
    std::uint64_t events = 0;  ///< observer events seen by the injector
    std::uint64_t ops = 0;     ///< interpreter ops executed so far
    bool injected = false;
    std::string current_call = "(boot)";  ///< op in flight (attribution)
    std::string injected_call = "(none)";
    std::uint64_t trace_events = 0;  ///< counted by the trace consumer

    /// The run's SimApi, set when the injection attaches. Lets the op
    /// hooks (which see no Simulation) reach the run's trace::Recorder.
    sim::SimApi* api = nullptr;
};

namespace {

constexpr std::size_t task_field_count = 6;
constexpr std::size_t object_field_count = 3;

/// Stamp the injection instant into the run's trace, if one is being
/// recorded. An annotation record never feeds the observer fan-out, so
/// the trigger ordinal space is untouched.
void mark_injection_in_trace(const InjectionProbe& p) {
    if (p.api == nullptr) {
        return;
    }
    if (trace::Recorder* rec = trace::Recorder::find(*p.api)) {
        rec->annotate(std::string("fault:") + to_string(p.cls) + "@" +
                      p.current_call);
    }
}

/// The injector: counts observer events and, at the trigger ordinal,
/// applies the fault through the sanctioned TKernel/SimApi mutation
/// hooks -- never through service entry points (observer contract).
class FaultInjector final : public sim::SimObserver {
public:
    FaultInjector(tkernel::TKernel& os, std::shared_ptr<InjectionProbe> probe)
        : os_(&os), probe_(std::move(probe)) {
        os_->sim().add_observer(this);
    }
    ~FaultInjector() override { os_->sim().remove_observer(this); }

    FaultInjector(const FaultInjector&) = delete;
    FaultInjector& operator=(const FaultInjector&) = delete;

    void on_state_change(const sim::TThread&, sim::ThreadState,
                         sim::ThreadState, sysc::Time) override {
        step();
    }
    void on_dispatch(const sim::TThread&, sysc::Time) override { step(); }
    void on_preemption(const sim::TThread&, sysc::Time) override { step(); }
    void on_interrupt_enter(const sim::TThread&, sysc::Time) override { step(); }
    void on_interrupt_return(const sim::TThread&, sysc::Time) override {
        step();
    }
    void on_wakeup(const sim::TThread&, const sim::TThread*,
                   sysc::Time) override {
        step();
    }
    void on_idle(sysc::Time) override { step(); }
    // on_service_enter/on_service_exit are deliberately NOT counted: the
    // trigger ordinal space must stay stable across releases so archived
    // repro JSONs keep replaying to the same outcome.

private:
    void step() {
        InjectionProbe& p = *probe_;
        const std::uint64_t index = p.events++;
        if (!p.with_fault || p.injected || p.cls == FaultClass::arg_corrupt) {
            return;  // arg_corrupt triggers on op ordinals (before_op hook)
        }
        if (index != p.trigger) {
            return;
        }
        if (apply(p)) {
            p.injected = true;
            p.injected_call = p.current_call;
            mark_injection_in_trace(p);
        }
    }

    /// Pick the victim from the live registries and corrupt it. Returns
    /// false when no suitable victim exists at the trigger point (the
    /// fault then stays un-injected for the rest of the run).
    bool apply(const InjectionProbe& p) {
        using tkernel::TKernel;
        switch (p.cls) {
            case FaultClass::tcb_bitflip: {
                const std::vector<tkernel::ID> ids = os_->tasks().ids();
                if (ids.empty()) {
                    return false;
                }
                const tkernel::ID victim = ids[p.target % ids.size()];
                const auto field = static_cast<TKernel::FaultTaskField>(
                    p.field % task_field_count);
                return os_->fault_flip_task_field(victim, field, p.bit);
            }
            case FaultClass::object_bitflip: {
                // Try the selected field first, then the other object
                // classes, so the fault lands whenever *any* semaphore
                // or eventflag exists.
                for (std::size_t k = 0; k < object_field_count; ++k) {
                    const auto field = static_cast<TKernel::FaultObjectField>(
                        (p.field + k) % object_field_count);
                    const std::vector<tkernel::ID> ids =
                        field == TKernel::FaultObjectField::flg_pattern
                            ? os_->eventflags().ids()
                            : os_->semaphores().ids();
                    if (ids.empty()) {
                        continue;
                    }
                    return os_->fault_flip_object_field(
                        field, ids[p.target % ids.size()], p.bit);
                }
                return false;
            }
            case FaultClass::arg_corrupt:
                return false;  // unreachable (filtered in step())
            case FaultClass::irq_drop: {
                const std::uint32_t n =
                    1 + (static_cast<std::uint32_t>(p.param) & 3u);
                os_->sim().SIM_FaultDropInterrupts(n);
                return true;
            }
            case FaultClass::irq_dup:
                os_->sim().SIM_FaultDuplicateInterrupt();
                return true;
            case FaultClass::timer_skew:
                return os_->fault_skew_next_timer(p.param);
        }
        return false;
    }

    tkernel::TKernel* os_;
    std::shared_ptr<InjectionProbe> probe_;
};

/// The third simultaneous observer of the run: a passive trace consumer
/// that only counts events. Its count doubling the injector's proves
/// the multi-observer fan-out delivers to every registered observer.
class TraceCounter final : public sim::SimObserver {
public:
    TraceCounter(sim::SimApi& api, std::shared_ptr<InjectionProbe> probe)
        : api_(&api), probe_(std::move(probe)) {
        api_->add_observer(this);
    }
    ~TraceCounter() override { api_->remove_observer(this); }

    TraceCounter(const TraceCounter&) = delete;
    TraceCounter& operator=(const TraceCounter&) = delete;

    void on_state_change(const sim::TThread&, sim::ThreadState,
                         sim::ThreadState, sysc::Time) override {
        ++probe_->trace_events;
    }
    void on_dispatch(const sim::TThread&, sysc::Time) override {
        ++probe_->trace_events;
    }
    void on_preemption(const sim::TThread&, sysc::Time) override {
        ++probe_->trace_events;
    }
    void on_interrupt_enter(const sim::TThread&, sysc::Time) override {
        ++probe_->trace_events;
    }
    void on_interrupt_return(const sim::TThread&, sysc::Time) override {
        ++probe_->trace_events;
    }
    void on_wakeup(const sim::TThread&, const sim::TThread*,
                   sysc::Time) override {
        ++probe_->trace_events;
    }
    void on_idle(sysc::Time) override { ++probe_->trace_events; }
    // Service enter/exit are not counted, mirroring FaultInjector: the
    // "trace_events == injector ordinals" fan-out invariant stays exact.

private:
    sim::SimApi* api_;
    std::shared_ptr<InjectionProbe> probe_;
};

fuzz::WorkloadHooks make_hooks(std::shared_ptr<InjectionProbe> probe) {
    fuzz::WorkloadHooks hooks;
    hooks.before_op = [probe](std::uint64_t index, fuzz::FuzzOp& op, bool) {
        InjectionProbe& p = *probe;
        p.ops = index + 1;
        p.current_call = fuzz::to_string(op.kind);
        if (!p.with_fault || p.cls != FaultClass::arg_corrupt || p.injected ||
            index != p.trigger) {
            return;
        }
        const std::int32_t mask = p.param == 0 ? 1 : p.param;
        switch (p.field % 4) {
            case 0:
                op.a ^= mask;
                break;
            case 1:
                op.b ^= mask;
                break;
            case 2:
                op.c ^= mask;
                break;
            default:
                op.d ^= mask;
                break;
        }
        p.injected = true;
        p.injected_call = p.current_call;
        mark_injection_in_trace(p);
    };
    return hooks;
}

std::string fmt_hex64(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

}  // namespace

// ---- single-injection execution ---------------------------------------------

BuiltInjection build_injection(const FaultSpec& fault, bool with_fault,
                               const TraceConfig& trace) {
    auto probe = std::make_shared<InjectionProbe>();
    probe->cls = fault.cls;
    probe->trigger = fault.trigger;
    probe->target = fault.target;
    probe->field = fault.field;
    probe->bit = fault.bit;
    probe->param = fault.param;
    probe->with_fault = with_fault;

    auto attach = [probe, with_fault](Simulation& sim) {
        probe->api = &sim.sim();
        if (with_fault) {
            sim.retain(std::make_shared<FaultInjector>(sim.os(), probe));
        }
        sim.retain(std::make_shared<TraceCounter>(sim.sim(), probe));
    };

    fuzz::BuiltScenario b = fuzz::build_scenario(
        fault.workload, /*with_oracle=*/true, make_hooks(probe), attach);

    BuiltInjection out;
    out.scenario = std::move(b.scenario);
    out.oracle = std::move(b.oracle);
    out.probe = std::move(probe);
    if (with_fault) {
        out.scenario.name = fault.name();
    }
    out.scenario.delta_budget = fault.delta_budget;
    out.scenario.trace = trace;
    return out;
}

BaselineProfile profile_baseline(const fuzz::FuzzSpec& workload,
                                 std::uint64_t delta_budget) {
    FaultSpec f;
    f.workload = workload;
    f.delta_budget = delta_budget;
    const BuiltInjection built = build_injection(f, /*with_fault=*/false);
    const ScenarioResult run = run_scenario(built.scenario);

    BaselineProfile p;
    p.ok = run.passed;
    p.error = run.error;
    p.fingerprint = run.fingerprint;
    p.events = built.probe->trace_events;
    p.ops = built.probe->ops;
    return p;
}

InjectionResult harvest(const BuiltInjection& built, const ScenarioResult& run,
                        const BaselineProfile& baseline) {
    InjectionResult out;
    const InjectionProbe& p = *built.probe;
    out.injected = p.injected;
    out.service_call = p.injected ? p.injected_call : "(none)";
    out.fingerprint = run.fingerprint;
    out.baseline_fingerprint = baseline.fingerprint;
    out.diverged = run.fingerprint != baseline.fingerprint;
    out.trace_events = p.trace_events;
    out.error = run.error;
    if (built.oracle != nullptr) {
        out.oracle_violations = built.oracle->violation_count;
        out.violations = built.oracle->violations;
    }
    // Classification precedence: a hung run never reaches the oracle's
    // final check, and a violated run's check-predicate failure must not
    // read as a mere detection.
    if (run.hung) {
        out.outcome = Outcome::hung;
    } else if (out.oracle_violations > 0) {
        out.outcome = Outcome::invariant_violated;
    } else if (!run.passed) {
        out.outcome = Outcome::detected;
    } else {
        out.outcome = Outcome::masked;
    }
    return out;
}

InjectionResult run_injection(const FaultSpec& fault,
                              const BaselineProfile& baseline) {
    const BuiltInjection built = build_injection(fault);
    const ScenarioResult run = run_scenario(built.scenario);
    return harvest(built, run, baseline);
}

// ---- repro files ------------------------------------------------------------

std::string make_repro_json(const FaultSpec& fault,
                            const InjectionResult& result,
                            const std::string& trace_path) {
    Json r = Json::object();
    r.set("outcome", Json::string(to_string(result.outcome)));
    r.set("injected", Json::boolean(result.injected));
    r.set("diverged", Json::boolean(result.diverged));
    r.set("service_call", Json::string(result.service_call));
    r.set("fingerprint", Json::string(fmt_hex64(result.fingerprint)));
    r.set("baseline_fingerprint",
          Json::string(fmt_hex64(result.baseline_fingerprint)));
    r.set("oracle_violations", Json::number(result.oracle_violations));
    Json v = Json::array();
    for (const std::string& s : result.violations) {
        v.push(Json::string(s));
    }
    r.set("violations", std::move(v));
    r.set("error", Json::string(result.error));
    if (!trace_path.empty()) {
        r.set("trace", Json::string(trace_path));
    }

    Json doc = Json::object();
    doc.set("rtk_fault_repro", Json::number(1));
    doc.set("fault", fault.to_json());
    doc.set("result", std::move(r));
    return doc.dump(2) + "\n";
}

bool parse_repro_json(const std::string& text, FaultSpec& out,
                      std::string* error) {
    Json doc;
    if (!Json::parse(text, doc, error)) {
        return false;
    }
    const Json& spec = doc.has("fault") ? doc.at("fault") : doc;
    return FaultSpec::from_json(spec, out, error);
}

// ---- campaign ---------------------------------------------------------------

void CoverageCell::add(Outcome o) {
    switch (o) {
        case Outcome::masked:
            ++masked;
            break;
        case Outcome::detected:
            ++detected;
            break;
        case Outcome::invariant_violated:
            ++invariant_violated;
            break;
        case Outcome::hung:
            ++hung;
            break;
    }
}

std::size_t CampaignReport::service_calls_covered() const {
    std::size_t n = 0;
    for (const auto& [call, row] : heat) {
        (void)row;
        n += call != "(none)" ? 1 : 0;
    }
    return n;
}

std::size_t CampaignReport::fault_classes_covered() const {
    std::map<std::string, bool> seen;
    for (const auto& [call, row] : heat) {
        (void)call;
        for (const auto& [cls, cell] : row) {
            if (cell.total() > 0) {
                seen[cls] = true;
            }
        }
    }
    return seen.size();
}

Json CampaignReport::to_json_doc() const {
    Json agg = Json::object();
    agg.set("workloads", Json::number(workloads));
    agg.set("injections", Json::number(injections));
    agg.set("injected", Json::number(injected));
    agg.set("diverged", Json::number(diverged));
    for (std::size_t i = 0; i < outcome_count; ++i) {
        agg.set(to_string(static_cast<Outcome>(i)), Json::number(outcomes[i]));
    }
    agg.set("service_calls_covered", Json::number(service_calls_covered()));
    agg.set("fault_classes_covered", Json::number(fault_classes_covered()));
    agg.set("wall_seconds", Json::number_real(wall_seconds));

    Json cov = Json::object();
    for (const auto& [call, row] : heat) {
        Json jrow = Json::object();
        for (const auto& [cls, cell] : row) {
            Json jcell = Json::object();
            jcell.set("masked", Json::number(cell.masked));
            jcell.set("detected", Json::number(cell.detected));
            jcell.set("invariant_violated",
                      Json::number(cell.invariant_violated));
            jcell.set("hung", Json::number(cell.hung));
            jcell.set("total", Json::number(cell.total()));
            jrow.set(cls, std::move(jcell));
        }
        cov.set(call, std::move(jrow));
    }

    Json repros = Json::array();
    for (const std::string& p : repro_paths) {
        repros.push(Json::string(p));
    }

    Json doc = Json::object();
    doc.set("campaign", std::move(agg));
    doc.set("coverage", std::move(cov));
    doc.set("repros", std::move(repros));
    if (traced_runs > 0) {
        Json t = Json::object();
        t.set("traced_runs", Json::number(traced_runs));
        t.set("metrics", trace_metrics.to_json(/*with_tasks=*/false));
        Json tpaths = Json::array();
        for (const std::string& p : trace_paths) {
            tpaths.push(Json::string(p));
        }
        t.set("files", std::move(tpaths));
        doc.set("trace", std::move(t));
    }
    return doc;
}

std::string CampaignReport::to_json() const {
    return to_json_doc().dump(2) + "\n";
}

bool CampaignReport::write_json(const std::string& path) const {
    return sysc::write_file_atomic(path, to_json());
}

CampaignReport run_fault_campaign(const CampaignOptions& opts) {
    const auto start = std::chrono::steady_clock::now();
    CampaignReport rep;

    // 1. Generate the corpus and profile fault-free baselines.
    std::vector<fuzz::FuzzSpec> corpus;
    std::vector<BaselineProfile> baselines;
    corpus.reserve(opts.corpus);
    baselines.reserve(opts.corpus);
    for (std::size_t i = 0; i < opts.corpus; ++i) {
        fuzz::FuzzSpec spec =
            fuzz::generate_spec(opts.base_seed + i, opts.params);
        BaselineProfile base = profile_baseline(spec, opts.delta_budget);
        if (base.events == 0) {
            continue;  // nothing ever happened; no sites to sample
        }
        corpus.push_back(std::move(spec));
        baselines.push_back(std::move(base));
    }
    rep.workloads = corpus.size();

    // 2. Sample injection sites. Fault classes are cycled so all six
    // appear; trigger ordinals are drawn inside the baseline profile so
    // every injection actually fires (the pre-trigger prefix of a
    // faulted run is bit-identical to its baseline).
    fuzz::Rng rng(opts.base_seed ^ 0xfa071u);
    std::vector<FaultSpec> faults;
    std::vector<std::size_t> workload_of;
    faults.reserve(corpus.size() * opts.injections_per_workload);
    for (std::size_t w = 0; w < corpus.size(); ++w) {
        const BaselineProfile& base = baselines[w];
        for (std::size_t j = 0; j < opts.injections_per_workload; ++j) {
            FaultSpec f;
            f.workload = corpus[w];
            f.cls = all_fault_classes()[j % fault_class_count];
            f.delta_budget = opts.delta_budget;
            const std::uint64_t space =
                f.cls == FaultClass::arg_corrupt ? base.ops : base.events;
            if (space == 0) {
                continue;  // op-less workload cannot host an arg fault
            }
            f.trigger = rng.below(space);
            f.target = static_cast<std::uint32_t>(rng.below(64));
            f.field = static_cast<std::uint32_t>(rng.below(24));
            f.bit = static_cast<std::uint32_t>(rng.below(64));
            switch (f.cls) {
                case FaultClass::arg_corrupt:
                    f.param = static_cast<std::int32_t>(rng.below(0xffff)) + 1;
                    break;
                case FaultClass::irq_drop:
                    f.param = static_cast<std::int32_t>(rng.below(4));
                    break;
                case FaultClass::timer_skew:
                    f.param = static_cast<std::int32_t>(rng.range(-20, 20));
                    if (f.param == 0) {
                        f.param = 7;
                    }
                    break;
                default:
                    break;
            }
            faults.push_back(std::move(f));
            workload_of.push_back(w);
        }
    }

    // 3. Build, run and classify injections in bounded chunks: only one
    // chunk's scenarios -- and their retained trace rings -- are alive
    // at a time. With trace_dir set, every run records into an in-memory
    // ring (keep_bytes) and the campaign writes only the interesting
    // captures to disk after classification. With store_dir set, each
    // classified injection streams into the append-only JSONL store
    // before the next chunk starts, so a crash loses at most one chunk.
    const bool tracing = !opts.trace_dir.empty();
    TraceConfig tcfg;
    tcfg.enabled = tracing;
    tcfg.buffer_bytes = opts.trace_buffer_bytes;
    tcfg.keep_bytes = true;
    ScenarioRunner runner(ScenarioRunner::Options{opts.threads});

    campaign::JsonlAppender store;
    if (!opts.store_dir.empty()) {
        std::string store_error;
        if (!store.open(opts.store_dir + "/results.jsonl",
                        /*flush_every=*/8, &store_error)) {
            std::fprintf(stderr, "fault campaign: store disabled: %s\n",
                         store_error.c_str());
        }
    }

    const std::size_t chunk = opts.chunk == 0 ? faults.size() : opts.chunk;
    for (std::size_t chunk_begin = 0; chunk_begin < faults.size();
         chunk_begin += chunk) {
        const std::size_t chunk_end =
            std::min(faults.size(), chunk_begin + chunk);
        std::vector<BuiltInjection> built;
        std::vector<ScenarioSpec> scenarios;
        built.reserve(chunk_end - chunk_begin);
        scenarios.reserve(chunk_end - chunk_begin);
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
            built.push_back(build_injection(faults[i], /*with_fault=*/true, tcfg));
            scenarios.push_back(built.back().scenario);
        }
        const BatchReport batch = runner.run(scenarios);

        // 4. Classify and aggregate the heat-map.
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
            const std::size_t k = i - chunk_begin;
            const InjectionResult r =
                harvest(built[k], batch.results[k], baselines[workload_of[i]]);
            ++rep.injections;
            rep.injected += r.injected ? 1 : 0;
            rep.diverged += r.diverged ? 1 : 0;
            ++rep.outcomes[static_cast<std::size_t>(r.outcome)];
            rep.heat[r.service_call][to_string(faults[i].cls)].add(r.outcome);
            const ScenarioResult& run = batch.results[k];
            if (run.traced) {
                ++rep.traced_runs;
                rep.trace_metrics.merge_counters(run.metrics);
            }
            const bool keep = r.outcome != Outcome::masked;
            std::string trace_path;
            if (keep && tracing && !run.trace_data.empty() &&
                rep.trace_paths.size() < opts.max_repros) {
                char tname[64];
                std::snprintf(tname, sizeof(tname), "fault_repro_%03zu.rtktrace",
                              i);
                trace_path = opts.trace_dir + "/" + tname;
                if (sysc::write_file_atomic(trace_path, run.trace_data)) {
                    rep.trace_paths.push_back(trace_path);
                } else {
                    trace_path.clear();
                }
            }
            if (keep && !opts.repro_dir.empty() &&
                rep.repro_paths.size() < opts.max_repros) {
                char fname[64];
                std::snprintf(fname, sizeof(fname), "fault_repro_%03zu.json", i);
                const std::string path = opts.repro_dir + "/" + fname;
                if (sysc::write_file_atomic(path,
                                            make_repro_json(faults[i], r,
                                                            trace_path))) {
                    rep.repro_paths.push_back(path);
                }
            }
            if (store.is_open()) {
                store.append(
                    campaign::fault_result_record(i, faults[i], r).dump(-1));
            }
        }
    }
    if (store.is_open() && !store.close()) {
        std::fprintf(stderr, "fault campaign: store close failed: %s\n",
                     store.path().c_str());
    }

    rep.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return rep;
}

}  // namespace rtk::harness::fault
