#include "harness/fuzz_spec.hpp"

#include <array>
#include <utility>

#include "harness/fuzz_rng.hpp"

namespace rtk::harness::fuzz {

using api::Json;

// ---- JSON round trip --------------------------------------------------------

std::string FuzzSpec::scenario_name() const {
    return "fuzz/" + std::to_string(seed) + "/" +
           (round_robin ? "round_robin" : "priority");
}

Json FuzzSpec::to_json() const {
    Json j = Json::object();
    j.set("seed", Json::number(seed));
    j.set("duration_ms", Json::number(duration_ms));
    j.set("tick_us", Json::number(tick_us));
    j.set("round_robin", Json::boolean(round_robin));
    j.set("iter_units", Json::number_signed(iter_units));

    Json jt = Json::array();
    for (const TaskSpec& t : tasks) {
        Json o = Json::object();
        o.set("pri", Json::number_signed(t.pri));
        o.set("tex", Json::boolean(t.tex));
        o.set("ops", corpus::program_to_json(t.ops));
        jt.push(std::move(o));
    }
    j.set("tasks", std::move(jt));

    Json js = Json::array();
    for (const SemSpec& s : sems) {
        Json o = Json::object();
        o.set("init", Json::number_signed(s.init));
        o.set("max", Json::number_signed(s.max));
        o.set("tpri", Json::boolean(s.tpri));
        o.set("cnt_order", Json::boolean(s.cnt_order));
        js.push(std::move(o));
    }
    j.set("sems", std::move(js));

    Json jf = Json::array();
    for (const FlgSpec& f : flgs) {
        Json o = Json::object();
        o.set("init", Json::number(f.init));
        o.set("tpri", Json::boolean(f.tpri));
        o.set("wmul", Json::boolean(f.wmul));
        jf.push(std::move(o));
    }
    j.set("flgs", std::move(jf));

    Json jm = Json::array();
    for (const MtxSpec& m : mtxs) {
        Json o = Json::object();
        o.set("proto", Json::number_signed(m.proto));
        o.set("ceil", Json::number_signed(m.ceil));
        jm.push(std::move(o));
    }
    j.set("mtxs", std::move(jm));

    Json jb = Json::array();
    for (const MbxSpec& m : mbxs) {
        Json o = Json::object();
        o.set("tpri", Json::boolean(m.tpri));
        o.set("mpri", Json::boolean(m.mpri));
        o.set("nodes", Json::number_signed(m.nodes));
        jb.push(std::move(o));
    }
    j.set("mbxs", std::move(jb));

    Json jmb = Json::array();
    for (const MbfSpec& m : mbfs) {
        Json o = Json::object();
        o.set("bufsz", Json::number_signed(m.bufsz));
        o.set("maxmsz", Json::number_signed(m.maxmsz));
        o.set("tpri", Json::boolean(m.tpri));
        jmb.push(std::move(o));
    }
    j.set("mbfs", std::move(jmb));

    Json jpf = Json::array();
    for (const MpfSpec& m : mpfs) {
        Json o = Json::object();
        o.set("cnt", Json::number_signed(m.cnt));
        o.set("blksz", Json::number_signed(m.blksz));
        o.set("tpri", Json::boolean(m.tpri));
        jpf.push(std::move(o));
    }
    j.set("mpfs", std::move(jpf));

    Json jpl = Json::array();
    for (const MplSpec& m : mpls) {
        Json o = Json::object();
        o.set("size", Json::number_signed(m.size));
        o.set("tpri", Json::boolean(m.tpri));
        jpl.push(std::move(o));
    }
    j.set("mpls", std::move(jpl));

    Json jc = Json::array();
    for (const CycSpec& c : cycs) {
        Json o = Json::object();
        o.set("period_ms", Json::number_signed(c.period_ms));
        o.set("phase_ms", Json::number_signed(c.phase_ms));
        o.set("autostart", Json::boolean(c.autostart));
        o.set("phs", Json::boolean(c.phs));
        o.set("ops", corpus::program_to_json(c.ops));
        jc.push(std::move(o));
    }
    j.set("cycs", std::move(jc));

    Json ja = Json::array();
    for (const AlmSpec& a : alms) {
        Json o = Json::object();
        o.set("start_ms", Json::number_signed(a.start_ms));
        o.set("ops", corpus::program_to_json(a.ops));
        ja.push(std::move(o));
    }
    j.set("alms", std::move(ja));

    Json ji = Json::array();
    for (const IntSpec& i : ints) {
        Json o = Json::object();
        o.set("pri", Json::number_signed(i.pri));
        o.set("ops", corpus::program_to_json(i.ops));
        ji.push(std::move(o));
    }
    j.set("ints", std::move(ji));
    return j;
}

bool FuzzSpec::from_json(const Json& j, FuzzSpec& out, std::string* error) {
    out = FuzzSpec{};
    if (!j.is_object()) {
        if (error != nullptr) {
            *error = "spec is not an object";
        }
        return false;
    }
    out.seed = j.at("seed").as_u64();
    out.duration_ms = static_cast<std::uint32_t>(j.at("duration_ms").as_u64(50));
    out.tick_us = static_cast<std::uint32_t>(j.at("tick_us").as_u64(1000));
    out.round_robin = j.at("round_robin").as_bool();
    out.iter_units = static_cast<std::int32_t>(j.at("iter_units").as_i64(10));
    if (out.duration_ms == 0 || out.tick_us == 0) {
        if (error != nullptr) {
            *error = "duration_ms/tick_us must be positive";
        }
        return false;
    }

    for (const Json& o : j.at("tasks").items()) {
        TaskSpec t;
        t.pri = static_cast<std::int32_t>(o.at("pri").as_i64(1));
        t.tex = o.at("tex").as_bool();
        if (!corpus::program_from_json(o.at("ops"), t.ops, error)) {
            return false;
        }
        out.tasks.push_back(std::move(t));
    }
    for (const Json& o : j.at("sems").items()) {
        SemSpec s;
        s.init = static_cast<std::int32_t>(o.at("init").as_i64());
        s.max = static_cast<std::int32_t>(o.at("max").as_i64(1));
        s.tpri = o.at("tpri").as_bool();
        s.cnt_order = o.at("cnt_order").as_bool();
        out.sems.push_back(s);
    }
    for (const Json& o : j.at("flgs").items()) {
        FlgSpec f;
        f.init = static_cast<std::uint32_t>(o.at("init").as_u64());
        f.tpri = o.at("tpri").as_bool();
        f.wmul = o.at("wmul").as_bool(true);
        out.flgs.push_back(f);
    }
    for (const Json& o : j.at("mtxs").items()) {
        MtxSpec m;
        m.proto = static_cast<std::int32_t>(o.at("proto").as_i64());
        m.ceil = static_cast<std::int32_t>(o.at("ceil").as_i64(1));
        out.mtxs.push_back(m);
    }
    for (const Json& o : j.at("mbxs").items()) {
        MbxSpec m;
        m.tpri = o.at("tpri").as_bool();
        m.mpri = o.at("mpri").as_bool();
        m.nodes = static_cast<std::int32_t>(o.at("nodes").as_i64(4));
        out.mbxs.push_back(m);
    }
    for (const Json& o : j.at("mbfs").items()) {
        MbfSpec m;
        m.bufsz = static_cast<std::int32_t>(o.at("bufsz").as_i64(64));
        m.maxmsz = static_cast<std::int32_t>(o.at("maxmsz").as_i64(16));
        m.tpri = o.at("tpri").as_bool();
        out.mbfs.push_back(m);
    }
    for (const Json& o : j.at("mpfs").items()) {
        MpfSpec m;
        m.cnt = static_cast<std::int32_t>(o.at("cnt").as_i64(2));
        m.blksz = static_cast<std::int32_t>(o.at("blksz").as_i64(16));
        m.tpri = o.at("tpri").as_bool();
        out.mpfs.push_back(m);
    }
    for (const Json& o : j.at("mpls").items()) {
        MplSpec m;
        m.size = static_cast<std::int32_t>(o.at("size").as_i64(256));
        m.tpri = o.at("tpri").as_bool();
        out.mpls.push_back(m);
    }
    for (const Json& o : j.at("cycs").items()) {
        CycSpec c;
        c.period_ms = static_cast<std::int32_t>(o.at("period_ms").as_i64(5));
        c.phase_ms = static_cast<std::int32_t>(o.at("phase_ms").as_i64());
        c.autostart = o.at("autostart").as_bool(true);
        c.phs = o.at("phs").as_bool();
        if (!corpus::program_from_json(o.at("ops"), c.ops, error)) {
            return false;
        }
        out.cycs.push_back(std::move(c));
    }
    for (const Json& o : j.at("alms").items()) {
        AlmSpec a;
        a.start_ms = static_cast<std::int32_t>(o.at("start_ms").as_i64());
        if (!corpus::program_from_json(o.at("ops"), a.ops, error)) {
            return false;
        }
        out.alms.push_back(std::move(a));
    }
    for (const Json& o : j.at("ints").items()) {
        IntSpec i;
        i.pri = static_cast<std::int32_t>(o.at("pri").as_i64(1));
        if (!corpus::program_from_json(o.at("ops"), i.ops, error)) {
            return false;
        }
        out.ints.push_back(std::move(i));
    }
    return true;
}

// ---- generator --------------------------------------------------------------

namespace {

SpecTmo gen_tmo(Rng& rng) {
    const std::uint64_t r = rng.below(100);
    if (r < 20) {
        return -1;  // TMO_FEVR
    }
    if (r < 35) {
        return 0;  // TMO_POL
    }
    return static_cast<SpecTmo>(1 + rng.below(12));
}

/// One op aimed at task-level code. Only object classes that exist in
/// the spec are drawn.
FuzzOp gen_task_op(Rng& rng, const FuzzSpec& spec, const GenParams& params) {
    const int ntasks = static_cast<int>(spec.tasks.size());
    for (;;) {
        // Draw an op family, then reject families without instances.
        switch (rng.below(20)) {
            case 0:
                return {OpKind::compute, rng.irange(5, 120), 0, 0, 0};
            case 1:
                return {OpKind::delay, rng.irange(1, 8), 0, 0, 0};
            case 2:
                if (rng.chance(50)) {
                    return {OpKind::sleep, gen_tmo(rng), 0, 0, 0};
                }
                return {OpKind::wakeup, rng.irange(0, ntasks - 1), 0, 0, 0};
            case 3: {
                const int sel = rng.irange(0, 4);
                const int tgt = rng.irange(0, ntasks - 1);
                if (sel == 0) {
                    return {OpKind::can_wup, tgt, 0, 0, 0};
                }
                if (sel == 1) {
                    return {OpKind::rel_wai, tgt, 0, 0, 0};
                }
                if (sel == 2) {
                    return {OpKind::suspend, tgt, 0, 0, 0};
                }
                if (sel == 3) {
                    return {OpKind::resume, tgt, 0, 0, 0};
                }
                return {OpKind::frsm, tgt, 0, 0, 0};
            }
            case 4:
                return {OpKind::chg_pri, rng.irange(0, ntasks - 1),
                        rng.chance(10) ? 0 : rng.irange(1, params.max_pri), 0, 0};
            case 5:
                return {OpKind::rot_rdq,
                        rng.chance(30) ? 0 : rng.irange(1, params.max_pri), 0, 0, 0};
            case 6:
                if (rng.chance(60)) {
                    return {OpKind::sta_tsk, rng.irange(0, ntasks - 1), 0, 0, 0};
                }
                if (rng.chance(30)) {
                    return {OpKind::ext_tsk, 0, 0, 0, 0};
                }
                return {OpKind::ter_tsk, rng.irange(0, ntasks - 1), 0, 0, 0};
            case 7:
            case 8:
                if (!spec.sems.empty()) {
                    const int s = rng.irange(0, static_cast<int>(spec.sems.size()) - 1);
                    const int smax = spec.sems[static_cast<std::size_t>(s)].max;
                    if (rng.chance(55)) {
                        return {OpKind::sem_wait, s, rng.irange(1, smax < 3 ? smax : 3),
                                gen_tmo(rng), 0};
                    }
                    return {OpKind::sem_signal, s, rng.irange(1, 2), 0, 0};
                }
                break;
            case 9:
            case 10:
                if (!spec.flgs.empty()) {
                    const int f = rng.irange(0, static_cast<int>(spec.flgs.size()) - 1);
                    const std::uint64_t r = rng.below(100);
                    if (r < 40) {
                        return {OpKind::flg_wait, f, rng.irange(1, 0xF),
                                rng.irange(0, 5), gen_tmo(rng)};
                    }
                    if (r < 85) {
                        return {OpKind::flg_set, f, rng.irange(1, 0xF), 0, 0};
                    }
                    return {OpKind::flg_clr, f, rng.irange(0, 0xF), 0, 0};
                }
                break;
            case 11:
            case 12:
                if (!spec.mtxs.empty()) {
                    const int m = rng.irange(0, static_cast<int>(spec.mtxs.size()) - 1);
                    if (rng.chance(60)) {
                        return {OpKind::mtx_lock, m, gen_tmo(rng), 0, 0};
                    }
                    return {OpKind::mtx_unlock, m, 0, 0, 0};
                }
                break;
            case 13:
                if (!spec.mbxs.empty()) {
                    const int m = rng.irange(0, static_cast<int>(spec.mbxs.size()) - 1);
                    if (rng.chance(50)) {
                        return {OpKind::mbx_send, m, rng.irange(1, 8), 0, 0};
                    }
                    return {OpKind::mbx_recv, m, gen_tmo(rng), 0, 0};
                }
                break;
            case 14:
                if (!spec.mbfs.empty()) {
                    const int m = rng.irange(0, static_cast<int>(spec.mbfs.size()) - 1);
                    if (rng.chance(50)) {
                        return {OpKind::mbf_send, m,
                                rng.irange(1, spec.mbfs[static_cast<std::size_t>(m)].maxmsz),
                                gen_tmo(rng), 0};
                    }
                    return {OpKind::mbf_recv, m, gen_tmo(rng), 0, 0};
                }
                break;
            case 15:
                if (!spec.mpfs.empty()) {
                    const int m = rng.irange(0, static_cast<int>(spec.mpfs.size()) - 1);
                    if (rng.chance(55)) {
                        return {OpKind::mpf_get, m, gen_tmo(rng), 0, 0};
                    }
                    return {OpKind::mpf_rel, m, 0, 0, 0};
                }
                if (!spec.mpls.empty()) {
                    const int m = rng.irange(0, static_cast<int>(spec.mpls.size()) - 1);
                    if (rng.chance(55)) {
                        return {OpKind::mpl_get, m, rng.irange(1, 96), gen_tmo(rng), 0};
                    }
                    return {OpKind::mpl_rel, m, 0, 0, 0};
                }
                break;
            case 16:
                if (!spec.cycs.empty() && rng.chance(50)) {
                    const int c = rng.irange(0, static_cast<int>(spec.cycs.size()) - 1);
                    return {rng.chance(50) ? OpKind::cyc_start : OpKind::cyc_stop, c,
                            0, 0, 0};
                }
                if (!spec.alms.empty()) {
                    const int a = rng.irange(0, static_cast<int>(spec.alms.size()) - 1);
                    if (rng.chance(70)) {
                        return {OpKind::alm_start, a, rng.irange(1, 20), 0, 0};
                    }
                    return {OpKind::alm_stop, a, 0, 0, 0};
                }
                break;
            case 17:
                if (!spec.ints.empty()) {
                    return {OpKind::raise_int,
                            rng.irange(0, static_cast<int>(spec.ints.size()) - 1), 0,
                            0, 0};
                }
                break;
            case 18:
                if (rng.chance(50)) {
                    return {OpKind::dsp_block, rng.irange(10, 80), 0, 0, 0};
                }
                return {OpKind::ras_tex, rng.irange(0, ntasks - 1),
                        rng.irange(1, 0xF), 0, 0};
            case 19:
                return {OpKind::ref_poll, rng.irange(0, 7), 0, 0, 0};
        }
    }
}

/// Handler-context op: non-blocking signalling / control only.
FuzzOp gen_handler_op(Rng& rng, const FuzzSpec& spec, const GenParams& params) {
    const int ntasks = static_cast<int>(spec.tasks.size());
    for (;;) {
        switch (rng.below(10)) {
            case 0:
            case 1:
                return {OpKind::compute, rng.irange(3, 40), 0, 0, 0};
            case 2:
                return {OpKind::wakeup, rng.irange(0, ntasks - 1), 0, 0, 0};
            case 3:
                if (!spec.sems.empty()) {
                    return {OpKind::sem_signal,
                            rng.irange(0, static_cast<int>(spec.sems.size()) - 1),
                            rng.irange(1, 2), 0, 0};
                }
                break;
            case 4:
                if (!spec.flgs.empty()) {
                    return {OpKind::flg_set,
                            rng.irange(0, static_cast<int>(spec.flgs.size()) - 1),
                            rng.irange(1, 0xF), 0, 0};
                }
                break;
            case 5:
                return {OpKind::chg_pri, rng.irange(0, ntasks - 1),
                        rng.irange(1, params.max_pri), 0, 0};
            case 6: {
                const int tgt = rng.irange(0, ntasks - 1);
                if (rng.chance(50)) {
                    return {OpKind::suspend, tgt, 0, 0, 0};
                }
                return {OpKind::resume, tgt, 0, 0, 0};
            }
            case 7:
                if (!spec.ints.empty() && rng.chance(40)) {
                    return {OpKind::raise_int,
                            rng.irange(0, static_cast<int>(spec.ints.size()) - 1), 0,
                            0, 0};
                }
                return {OpKind::rel_wai, rng.irange(0, ntasks - 1), 0, 0, 0};
            case 8:
                if (!spec.alms.empty()) {
                    return {OpKind::alm_start,
                            rng.irange(0, static_cast<int>(spec.alms.size()) - 1),
                            rng.irange(1, 15), 0, 0};
                }
                break;
            case 9:
                return {OpKind::ref_poll, rng.irange(0, 7), 0, 0, 0};
        }
    }
}

std::vector<FuzzOp> gen_ops(Rng& rng, const FuzzSpec& spec, const GenParams& params,
                            int count, bool handler) {
    std::vector<FuzzOp> ops;
    ops.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        ops.push_back(handler ? gen_handler_op(rng, spec, params)
                              : gen_task_op(rng, spec, params));
    }
    return ops;
}

}  // namespace

FuzzSpec generate_spec(std::uint64_t seed, const GenParams& params) {
    Rng rng(seed);
    FuzzSpec spec;
    spec.seed = seed;
    spec.round_robin = (rng.next_u64() & 1) != 0;
    spec.duration_ms = static_cast<std::uint32_t>(
        rng.range(params.min_duration_ms, params.max_duration_ms));
    switch (rng.below(8)) {
        case 0: spec.tick_us = 500; break;
        case 1: spec.tick_us = 2000; break;
        default: spec.tick_us = 1000; break;
    }
    spec.iter_units = rng.irange(5, 40);

    // ---- object population (before programs, so ops can reference it) ----
    const int ntasks = rng.irange(params.min_tasks, params.max_tasks);
    const int nsems = rng.irange(0, params.max_sems);
    for (int i = 0; i < nsems; ++i) {
        SemSpec s;
        s.max = rng.irange(1, 8);
        s.init = rng.irange(0, s.max);
        s.tpri = rng.chance(50);
        s.cnt_order = rng.chance(35);
        spec.sems.push_back(s);
    }
    const int nflgs = rng.irange(0, params.max_flgs);
    for (int i = 0; i < nflgs; ++i) {
        FlgSpec f;
        f.init = static_cast<std::uint32_t>(rng.below(0x10));
        f.tpri = rng.chance(50);
        f.wmul = rng.chance(80);
        spec.flgs.push_back(f);
    }
    const int nmtxs = rng.irange(0, params.max_mtxs);
    for (int i = 0; i < nmtxs; ++i) {
        MtxSpec m;
        m.proto = rng.irange(0, 3);
        m.ceil = rng.irange(1, 6);
        spec.mtxs.push_back(m);
    }
    const int nmbxs = rng.irange(0, params.max_mbxs);
    for (int i = 0; i < nmbxs; ++i) {
        MbxSpec m;
        m.tpri = rng.chance(50);
        m.mpri = rng.chance(50);
        m.nodes = rng.irange(2, 6);
        spec.mbxs.push_back(m);
    }
    const int nmbfs = rng.irange(0, params.max_mbfs);
    for (int i = 0; i < nmbfs; ++i) {
        MbfSpec m;
        m.maxmsz = rng.irange(4, 32);
        m.bufsz = rng.chance(12) ? 0 : rng.irange(16, 128);
        m.tpri = rng.chance(50);
        spec.mbfs.push_back(m);
    }
    const int nmpfs = rng.irange(0, params.max_mpfs);
    for (int i = 0; i < nmpfs; ++i) {
        MpfSpec m;
        m.cnt = rng.irange(1, 4);
        m.blksz = rng.irange(8, 64);
        m.tpri = rng.chance(50);
        spec.mpfs.push_back(m);
    }
    const int nmpls = rng.irange(0, params.max_mpls);
    for (int i = 0; i < nmpls; ++i) {
        MplSpec m;
        m.size = rng.irange(64, 512);
        m.tpri = rng.chance(50);
        spec.mpls.push_back(m);
    }

    // Tasks first as placeholders: handler/task programs index them.
    for (int i = 0; i < ntasks; ++i) {
        TaskSpec t;
        t.pri = rng.irange(1, params.max_pri);
        t.tex = rng.chance(25);
        spec.tasks.push_back(std::move(t));
    }

    const int ncycs = rng.irange(0, params.max_cycs);
    for (int i = 0; i < ncycs; ++i) {
        CycSpec c;
        c.period_ms = rng.irange(1, 10);
        c.phase_ms = rng.irange(0, 5);
        c.autostart = rng.chance(80);
        c.phs = rng.chance(30);
        spec.cycs.push_back(std::move(c));
    }
    const int nalms = rng.irange(0, params.max_alms);
    for (int i = 0; i < nalms; ++i) {
        AlmSpec a;
        a.start_ms = rng.chance(75) ? rng.irange(1, 30) : 0;
        spec.alms.push_back(std::move(a));
    }
    const int nints = rng.irange(0, params.max_ints);
    for (int i = 0; i < nints; ++i) {
        IntSpec v;
        v.pri = rng.irange(1, 8);
        spec.ints.push_back(std::move(v));
    }

    // ---- programs ----
    for (TaskSpec& t : spec.tasks) {
        t.ops = gen_ops(rng, spec, params, rng.irange(3, params.max_ops_per_task),
                        /*handler=*/false);
    }
    for (CycSpec& c : spec.cycs) {
        c.ops = gen_ops(rng, spec, params, rng.irange(1, 3), /*handler=*/true);
    }
    for (AlmSpec& a : spec.alms) {
        a.ops = gen_ops(rng, spec, params, rng.irange(1, 3), /*handler=*/true);
    }
    for (IntSpec& v : spec.ints) {
        v.ops = gen_ops(rng, spec, params, rng.irange(1, 3), /*handler=*/true);
    }
    return spec;
}

}  // namespace rtk::harness::fuzz
