// Crash-safe persistence primitives of the sharded campaign engine:
//
//   JsonlAppender -- an append-only JSONL result store. Records are
//       buffered and fsync'd in batches, so a SIGKILL loses at most the
//       current unflushed batch, never corrupts what was already
//       flushed. Paired with per-shard store files (a fresh file per
//       round, never appended across crashes) a torn final line is the
//       only possible damage -- and read_jsonl() skips torn lines.
//
//   read_jsonl -- the tolerant reader: every parseable record of a
//       store file, torn/garbled lines counted and skipped.
//
//   ClaimQueue -- a flock(2)-guarded shared cursor over a fixed work
//       list. Shard processes lease disjoint [begin, end) batches, so a
//       fast shard drains whatever a slow (or killed) one never
//       claimed: work stealing without a broker process.
//
// All of this is plain POSIX (open/write/fsync/flock); no daemon, no
// database, no third-party dependency.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/json.hpp"

namespace rtk::harness::campaign {

// ---- JsonlAppender ----------------------------------------------------------

/// Append-only JSONL writer with batched durability. Lines are staged in
/// memory and written + fsync'd every `flush_every` records (and on
/// sync()/close()), amortizing the fsync cost across a batch while
/// bounding how much a crash can lose.
class JsonlAppender {
public:
    JsonlAppender() = default;
    ~JsonlAppender();

    JsonlAppender(const JsonlAppender&) = delete;
    JsonlAppender& operator=(const JsonlAppender&) = delete;

    /// Open `path` for appending (created when absent). When an existing
    /// file does not end in a newline -- the torn tail of a killed
    /// writer -- a repair newline is appended first so the torn line
    /// stays isolated instead of fusing with the next record.
    bool open(const std::string& path, std::size_t flush_every = 8,
              std::string* error = nullptr);
    bool is_open() const { return fd_ >= 0; }
    const std::string& path() const { return path_; }

    /// Stage one record (`line` must not contain '\n'; one is added).
    /// Flushes + fsyncs when the batch is full. False on I/O failure.
    bool append(std::string_view line);

    /// Write all staged records and fsync.
    bool sync();

    /// sync() + close the descriptor. Safe to call twice.
    bool close();

    /// Records appended (staged or written) since open().
    std::uint64_t appended() const { return appended_; }

private:
    bool write_all(const char* data, std::size_t size);

    int fd_ = -1;
    std::string path_;
    std::string staged_;
    std::size_t staged_records_ = 0;
    std::size_t flush_every_ = 8;
    std::uint64_t appended_ = 0;
};

// ---- tolerant reader --------------------------------------------------------

/// Every parseable JSON record of the JSONL file at `path`, in file
/// order. Unparseable lines -- the torn tail of a killed writer, or
/// garbage -- are skipped and counted in `*skipped` (when given). A
/// missing file reads as empty: resuming a campaign that never started a
/// shard is not an error.
std::vector<api::Json> read_jsonl(const std::string& path,
                                  std::size_t* skipped = nullptr);

// ---- ClaimQueue -------------------------------------------------------------

/// Shared cursor over a fixed work list of `total` entries, advanced
/// under flock(2) by any number of cooperating processes. Each claim()
/// leases the next `batch` unclaimed indices; a killed process forfeits
/// only work it claimed but never recorded, which a later round re-runs.
/// The cursor file holds one decimal number; unreadable content heals to
/// zero (worst case: jobs re-run, and the store dedupes by job id).
class ClaimQueue {
public:
    ClaimQueue() = default;
    ~ClaimQueue();

    ClaimQueue(const ClaimQueue&) = delete;
    ClaimQueue& operator=(const ClaimQueue&) = delete;

    bool open(const std::string& cursor_path, std::string* error = nullptr);
    bool is_open() const { return fd_ >= 0; }

    /// Atomically lease [begin, end): at most `batch` entries starting at
    /// the shared cursor. False when the list is exhausted or on error.
    bool claim(std::uint64_t total, std::uint64_t batch, std::uint64_t& begin,
               std::uint64_t& end);

    void close();

private:
    int fd_ = -1;
};

}  // namespace rtk::harness::campaign
