// rtk::harness::campaign -- the sharded, resumable campaign model.
//
// A campaign is a *directory*. Everything a worker or a resume needs
// lives in it, written crash-safely:
//
//   <dir>/manifest.json     what to run (atomic+durable write, immutable)
//   <dir>/jobs.jsonl        the full job list, one record per job
//   <dir>/round_NNN.list    runlist of one execution round: the job ids
//                           still missing a result (atomic+durable)
//   <dir>/round_NNN.list.cursor
//                           the round's shared ClaimQueue cursor
//   <dir>/shards/round_NNN_sK.jsonl
//                           shard K's append-only result store for that
//                           round -- a fresh file per (round, shard), so
//                           a resume never appends to a possibly-torn
//                           file
//   <dir>/report.json       the merged report (atomic write)
//
// Determinism is the load-bearing property: every job record is a pure
// function of (manifest, job id) -- fixed-order RNG draws, no wall-clock
// fields, no host state -- so the merged report is byte-identical no
// matter how many shards, rounds, crashes or resumes produced the
// records. The crash-recovery test asserts exactly that.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/fault.hpp"
#include "harness/fuzz.hpp"

namespace rtk::harness::campaign {

using Json = api::Json;

// ---- manifest ---------------------------------------------------------------

enum class Kind : std::uint8_t {
    fuzz,   ///< differential fuzz jobs (run_spec_differential per seed)
    fault,  ///< fault-injection jobs (one injection per job)
};

const char* to_string(Kind k);
bool kind_from_string(const std::string& s, Kind& out);

/// The immutable description of a campaign, written once at submit time.
struct Manifest {
    std::string name = "campaign";
    Kind kind = Kind::fuzz;
    std::uint64_t base_seed = 1;

    // fuzz corpus: seeds x (both_policies ? 2 : 1) jobs.
    std::size_t seeds = 100;
    bool both_policies = true;

    // fault corpus: corpus x injections_per_workload jobs.
    std::size_t corpus = 8;
    std::size_t injections_per_workload = 32;
    std::uint64_t delta_budget = 2000000;
    /// When non-empty, fault workloads are drawn from this checked-in
    /// scenario corpus (rtk::corpus directory with a pinned index.json)
    /// instead of being generated: workload w is the corpus entry at
    /// index-sorted position w % entry-count, lowered through
    /// corpus_to_fuzz_spec. Empty: generate_spec(base_seed + w).
    std::string corpus_dir;

    // Engine knobs (affect scheduling only, never results).
    std::size_t claim_batch = 8;  ///< job leases per ClaimQueue claim
    std::size_t flush_every = 8;  ///< records per store fsync batch

    /// Total job count of the corpus.
    std::size_t total_jobs() const;

    Json to_json() const;
    static bool from_json(const Json& j, Manifest& out,
                          std::string* error = nullptr);
};

// ---- jobs -------------------------------------------------------------------

/// One unit of work. Ids are dense [0, total_jobs()) and double as the
/// dedup key of the result store.
struct Job {
    std::uint64_t id = 0;
    // fuzz
    std::uint64_t seed = 0;     ///< absolute generator seed
    bool round_robin = false;   ///< scheduler policy of this job
    // fault
    std::uint64_t workload = 0;   ///< corpus index (spec seed = base+w)
    std::uint64_t injection = 0;  ///< injection ordinal within workload
};

/// The full job list of a manifest, in id order.
std::vector<Job> make_jobs(const Manifest& m);

// ---- execution --------------------------------------------------------------

/// Per-shard cache of fault-free baseline profiles: one baseline run per
/// corpus workload, shared by all of that workload's injection jobs.
class BaselineCache {
public:
    /// Workload spec + its baseline profile for corpus index `w`.
    const std::pair<fuzz::FuzzSpec, fault::BaselineProfile>& get(
        const Manifest& m, std::uint64_t w);

private:
    std::map<std::uint64_t, std::pair<fuzz::FuzzSpec, fault::BaselineProfile>>
        cache_;
    /// Manifest::corpus_dir workloads: the pinned index, loaded once. A
    /// load failure is sticky (every workload yields a failed baseline,
    /// so every job records a deterministic skip).
    bool corpus_loaded_ = false;
    std::string corpus_error_;
    std::vector<std::pair<std::string, std::string>> corpus_files_;  ///< {file, family}
};

/// Run one job to its deterministic result record: a pure function of
/// (manifest, job) with no timing or host fields. Fault jobs whose
/// baseline failed or whose fault class has no trigger space yield a
/// deterministic {"skipped": true} record -- still a completed job.
Json run_job(const Manifest& m, const Job& job, BaselineCache& cache);

/// The record run_job() produces for a fuzz verdict / fault injection --
/// exposed so in-process campaigns (run_fuzz_campaign / run_fault_campaign
/// with store_dir set) stream the same schema the sharded engine writes.
Json fuzz_result_record(std::uint64_t id, const fuzz::FuzzSpec& spec,
                        const fuzz::SpecVerdict& v);
Json fault_result_record(std::uint64_t id, const fault::FaultSpec& spec,
                         const fault::InjectionResult& r);

// ---- directory layout -------------------------------------------------------

std::string manifest_path(const std::string& dir);
std::string jobs_path(const std::string& dir);
std::string shards_dir(const std::string& dir);
std::string report_path(const std::string& dir);
std::string runlist_path(const std::string& dir, unsigned round);
std::string cursor_path(const std::string& runlist);
std::string shard_store_path(const std::string& dir, unsigned round,
                             unsigned shard);

/// Create `dir` (and `dir`/shards), write manifest.json and jobs.jsonl
/// atomically + durably. Fails if the directory already holds a manifest.
bool init_campaign(const std::string& dir, const Manifest& m,
                   std::string* error = nullptr);

bool load_manifest(const std::string& dir, Manifest& out,
                   std::string* error = nullptr);
bool load_jobs(const std::string& dir, std::vector<Job>& out,
               std::string* error = nullptr);

// ---- scanning and merging ---------------------------------------------------

/// Every result record found across all shard stores, deduped by job id
/// (duplicates are byte-identical by determinism; the first wins).
struct StoreScan {
    std::map<std::uint64_t, Json> records;
    std::size_t store_files = 0;
    std::size_t skipped_lines = 0;  ///< torn/garbled lines tolerated
    std::size_t duplicates = 0;     ///< re-run jobs (crash + resume)
};

bool scan_stores(const std::string& dir, StoreScan& out,
                 std::string* error = nullptr);

/// The merged report document: a pure function of the manifest, the job
/// list and the deduped records. Byte-identical for any execution
/// history that produced a record for every job.
Json merged_report(const Manifest& m, const std::vector<Job>& jobs,
                   const StoreScan& scan);

/// Scan + merge + atomically write `out_path` (report_path(dir) when
/// empty). `*complete` (when given) reports whether every job had a
/// record.
bool merge_campaign(const std::string& dir, const std::string& out_path,
                    std::string* error = nullptr, bool* complete = nullptr);

}  // namespace rtk::harness::campaign
