// rtk::harness::fault -- the deterministic fault-injection campaign
// engine.
//
// Pipeline (one injection):
//
//   FuzzSpec workload --baseline run--> {fingerprint, event/op totals}
//   FaultSpec (workload + class + site) --build_injection--> ScenarioSpec
//       --run_scenario--> ScenarioResult x InvariantOracle
//       --classify--> masked | detected | invariant_violated | hung
//
// Faults are injected at SimObserver event sites (bit-flips of TCB /
// kernel-object bookkeeping, interrupt drop/duplication, timer skew) or
// at interpreter op sites (service-call argument corruption), always
// through the sanctioned mutation hooks of sim::SimApi and
// tkernel::TKernel -- never by calling service entry points from a
// callback. Every injection is a pure function of its FaultSpec: the
// trigger is an event/op ordinal, the victim a deterministic index into
// the live registries, so a repro JSON replays byte-for-byte.
//
// A campaign crosses a generated workload corpus with fault classes and
// sampled injection sites, runs every injection through the batch
// ScenarioRunner (hang-guarded by ScenarioSpec::delta_budget) and rolls
// the outcomes up into a service-call x fault-class coverage heat-map
// (BENCH_fault_coverage.json).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "harness/fuzz.hpp"
#include "harness/runner.hpp"

namespace rtk::harness::fault {

using Json = api::Json;

// ---- fault classes ----------------------------------------------------------

enum class FaultClass : std::uint8_t {
    tcb_bitflip,     ///< flip a bit of a TCB bookkeeping field
    object_bitflip,  ///< flip a bit of a semaphore/eventflag field
    arg_corrupt,     ///< XOR a mask into one service-call argument
    irq_drop,        ///< swallow the next N interrupt raises
    irq_dup,         ///< deliver the next interrupt raise twice
    timer_skew,      ///< shift the earliest timer firing by +/- ms
};

inline constexpr std::size_t fault_class_count = 6;

/// All classes, in enum order (campaigns cycle through this).
const FaultClass* all_fault_classes();

const char* to_string(FaultClass c);
bool fault_class_from_string(const std::string& s, FaultClass& out);

// ---- FaultSpec --------------------------------------------------------------

/// One deterministic injection: a workload plus where and what to
/// corrupt. Replaying the same FaultSpec yields a bit-identical run.
struct FaultSpec {
    fuzz::FuzzSpec workload;
    FaultClass cls = FaultClass::tcb_bitflip;
    /// Injection site: the 0-based observer-event ordinal at which the
    /// fault is applied -- except for arg_corrupt, where it is the
    /// 0-based op-execution ordinal of the interpreter.
    std::uint64_t trigger = 0;
    /// Victim selector, reduced modulo the live object population of the
    /// targeted registry at injection time.
    std::uint32_t target = 0;
    /// Field selector (reduced modulo the per-class field count): the
    /// TCB/object field to flip, or the operand (a..d) to corrupt.
    std::uint32_t field = 0;
    /// Bit to flip (reduced modulo the field width by the kernel hook).
    std::uint32_t bit = 0;
    /// Class parameter: XOR mask (arg_corrupt), raise count (irq_drop),
    /// skew in ms (timer_skew); unused otherwise.
    std::int32_t param = 0;
    /// Hang guard handed to ScenarioSpec::delta_budget.
    std::uint64_t delta_budget = 2000000;

    /// "fault/<class>/<workload seed>/t<trigger>" -- the scenario name.
    std::string name() const;

    Json to_json() const;
    static bool from_json(const Json& j, FaultSpec& out,
                          std::string* error = nullptr);
};

// ---- outcomes ---------------------------------------------------------------

/// Oracle-classified outcome of one injection, in *ascending* severity.
/// Classification precedence is the reverse: hung beats
/// invariant_violated beats detected beats masked.
enum class Outcome : std::uint8_t {
    masked,              ///< run completed, oracle clean, no sim error
    detected,            ///< the simulation errored (fatal check fired)
    invariant_violated,  ///< the run completed but broke a kernel law
    hung,                ///< the delta budget ran out (livelock)
};

inline constexpr std::size_t outcome_count = 4;

const char* to_string(Outcome o);
bool outcome_from_string(const std::string& s, Outcome& out);

/// Everything observed about one injection run.
struct InjectionResult {
    Outcome outcome = Outcome::masked;
    /// The trigger actually fired (always true when trigger was sampled
    /// inside the baseline profile; kept for off-profile specs).
    bool injected = false;
    /// Behaviour fingerprint differs from the fault-free baseline --
    /// orthogonal to the outcome (a masked fault may still diverge).
    bool diverged = false;
    /// Service call active at the injection site ("(boot)" when the
    /// trigger fired before any op ran; "(none)" when never injected).
    std::string service_call = "(none)";
    std::uint64_t fingerprint = 0;
    std::uint64_t baseline_fingerprint = 0;
    std::uint64_t oracle_violations = 0;
    std::vector<std::string> violations;
    std::string error;  ///< ScenarioResult::error (empty when masked)
    /// Proof of multi-observer fan-out: events counted by the trace
    /// consumer riding alongside the oracle and the injector.
    std::uint64_t trace_events = 0;
};

// ---- single-injection execution ---------------------------------------------

/// Fault-free profile of one workload, used to sample injection sites
/// and as the divergence reference.
struct BaselineProfile {
    bool ok = false;    ///< the baseline run itself completed cleanly
    std::string error;  ///< baseline failure detail (workload is unusable)
    std::uint64_t fingerprint = 0;
    std::uint64_t events = 0;  ///< observer callbacks emitted by the run
    std::uint64_t ops = 0;     ///< interpreter ops executed by the run
};

/// Run `workload` once without a fault and profile it.
BaselineProfile profile_baseline(const fuzz::FuzzSpec& workload,
                                 std::uint64_t delta_budget = 2000000);

/// A built injection: the runnable scenario plus the shared state the
/// run fills in (harvest with harvest() after run_scenario).
struct BuiltInjection {
    ScenarioSpec scenario;
    std::shared_ptr<fuzz::OracleReport> oracle;
    std::shared_ptr<struct InjectionProbe> probe;
};

/// Turn a FaultSpec into a runnable ScenarioSpec (oracle + injector +
/// trace consumer all attached to the one SimApi). `with_fault = false`
/// builds the identical scenario minus the injection (baseline leg).
/// `trace` opts the run into binary tracing (trace::Recorder rides the
/// same observer fan-out; the injector stamps a "fault:" annotation at
/// the injection instant).
BuiltInjection build_injection(const FaultSpec& fault, bool with_fault = true,
                               const TraceConfig& trace = {});

/// Distill a finished run into an InjectionResult.
InjectionResult harvest(const BuiltInjection& built, const ScenarioResult& run,
                        const BaselineProfile& baseline);

/// Convenience: build, run and classify one injection.
InjectionResult run_injection(const FaultSpec& fault,
                              const BaselineProfile& baseline);

// ---- repro files ------------------------------------------------------------

/// Self-contained repro document: the FaultSpec (workload embedded) plus
/// the observed result. Deterministic, so replaying and re-serializing
/// reproduces the document byte-for-byte.
/// `trace_path`, when non-empty, is recorded as the result's "trace"
/// member -- the .rtktrace capture of this very injection run.
std::string make_repro_json(const FaultSpec& fault,
                            const InjectionResult& result,
                            const std::string& trace_path = std::string());
/// Parse a repro document (or a bare FaultSpec object) back into a spec.
bool parse_repro_json(const std::string& text, FaultSpec& out,
                      std::string* error = nullptr);

// ---- campaign ---------------------------------------------------------------

struct CampaignOptions {
    std::uint64_t base_seed = 1;
    /// Workload corpus size (specs generated from base_seed upward).
    std::size_t corpus = 8;
    /// Injections per corpus workload (classes cycled, sites sampled).
    std::size_t injections_per_workload = 32;
    /// Worker threads of the ScenarioRunner (0 = hardware concurrency).
    unsigned threads = 0;
    /// Hang guard per injection run.
    std::uint64_t delta_budget = 2000000;
    /// When non-empty, write one repro JSON per non-masked outcome here
    /// (at most max_repros files).
    std::string repro_dir;
    std::size_t max_repros = 8;
    /// When non-empty, trace every injection run (trace::Recorder on the
    /// same observer fan-out as oracle + injector) and write the
    /// .rtktrace of each non-masked injection here (at most max_repros
    /// files, referenced by the matching repro JSON's "trace" member).
    std::string trace_dir;
    /// Per-run ring budget for campaign traces (kept deliberately small:
    /// every in-flight injection holds its capture until classification).
    std::size_t trace_buffer_bytes = std::size_t{256} << 10;
    /// When non-empty, stream one JSONL record per classified injection
    /// into `<store_dir>/results.jsonl` (append-only, fsync'd in
    /// batches) as the campaign runs -- a crash leaves every record
    /// classified so far on disk instead of losing the whole report.
    std::string store_dir;
    /// Injections built/run/classified per ScenarioRunner batch. Bounds
    /// how many scenarios (and retained trace rings) are in memory at
    /// once and how much work a crash can lose. 0 = one batch.
    std::size_t chunk = 256;
    fuzz::GenParams params;
};

/// One heat-map cell: outcome counts of (service call, fault class).
struct CoverageCell {
    std::uint64_t masked = 0;
    std::uint64_t detected = 0;
    std::uint64_t invariant_violated = 0;
    std::uint64_t hung = 0;

    std::uint64_t total() const {
        return masked + detected + invariant_violated + hung;
    }
    void add(Outcome o);
};

struct CampaignReport {
    std::size_t workloads = 0;   ///< corpus specs profiled
    std::size_t injections = 0;  ///< injection runs executed
    std::size_t injected = 0;    ///< runs whose trigger fired
    std::size_t diverged = 0;    ///< runs whose fingerprint moved
    std::uint64_t outcomes[outcome_count] = {0, 0, 0, 0};
    /// Heat-map: service call -> fault class -> outcome counts.
    std::map<std::string, std::map<std::string, CoverageCell>> heat;
    std::vector<std::string> repro_paths;
    /// .rtktrace files written for non-masked injections (campaigns with
    /// CampaignOptions::trace_dir set; parallel to repro_paths by index
    /// only when both dirs were configured).
    std::vector<std::string> trace_paths;
    /// Traced injection runs and their summed scalar trace metrics
    /// (zero / empty on untraced campaigns).
    std::size_t traced_runs = 0;
    trace::Metrics trace_metrics;
    double wall_seconds = 0.0;

    std::uint64_t count(Outcome o) const {
        return outcomes[static_cast<std::size_t>(o)];
    }
    /// Distinct service-call rows in the heat-map (excluding "(none)").
    std::size_t service_calls_covered() const;
    /// Distinct fault-class columns present in the heat-map.
    std::size_t fault_classes_covered() const;

    /// The BENCH_fault_coverage.json document as a Json tree -- callers
    /// that stamp extra members (e.g. the bench provenance block) edit
    /// the tree instead of splicing text.
    Json to_json_doc() const;
    /// to_json_doc() rendered with 2-space indent + trailing newline.
    std::string to_json() const;
    bool write_json(const std::string& path) const;
};

/// Run a campaign: generate the corpus, profile fault-free baselines,
/// sample `injections_per_workload` injection sites per workload (fault
/// classes cycled so all six appear), run every injection through the
/// batch ScenarioRunner and classify each outcome.
CampaignReport run_fault_campaign(const CampaignOptions& opts);

}  // namespace rtk::harness::fault
