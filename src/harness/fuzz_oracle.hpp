// InvariantOracle -- an online checker of kernel laws, attached to the
// SIM_API observation stream (sim/observer.hpp) of one simulation.
//
// The oracle is non-intrusive: it never calls a mutating kernel entry
// point, it only reads the T-Kernel registries and SIM_API introspection
// at well-defined quiescent points (task dispatch, CPU idle, end of
// run). Checked laws:
//
//   T1  simulation time is monotone across the event stream
//   T2  thread state transitions follow the µ-ITRON state machine
//   T3  at most one task-kind thread is RUNNING; running_task() agrees
//   T4  a task is linked in the scheduler's ready structure iff READY
//   D1  a dispatch picks the highest-priority READY task (priority
//       policy only; round robin is FIFO by design)
//   D2  the CPU never idles while a task is READY
//   W1  priority-ordered wait queues are sorted by current priority
//   W2  wait bookkeeping is consistent both ways: queued TCB <-> wait
//       kind/object id/queue membership; WAITING implies a wait factor
//   L1  no lost wakeup: no semaphore/eventflag/mempool/message-buffer
//       waiter whose release condition currently holds
//   M1  mutex ownership is consistent (owner <-> held_mutexes, owner
//       not DORMANT, owner not queued on its own mutex)
//   M2  inheritance/ceiling priority law: every live task's current
//       priority equals base boosted by its held mutexes
//   B1  message buffer byte accounting and mailbox/message order laws
//
// Violations are recorded as human-readable strings (first N kept, all
// counted); the fuzz driver dumps them into repro JSON.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/observer.hpp"
#include "tkernel/kernel.hpp"

namespace rtk::harness::fuzz {

class InvariantOracle final : public sim::SimObserver {
public:
    struct Options {
        /// Check D1 (needs a priority-preemptive scheduler underneath).
        bool priority_dispatch = true;
        /// Run the structural registry scans (W/L/M/B rules) at each
        /// quiescent point, not just at final_check().
        bool structural = true;
        std::size_t max_recorded = 32;
    };

    /// Subscribes to `os`'s SIM_API stream on construction.
    explicit InvariantOracle(tkernel::TKernel& os)
        : InvariantOracle(os, Options{}) {}
    InvariantOracle(tkernel::TKernel& os, Options opts);
    ~InvariantOracle() override;

    InvariantOracle(const InvariantOracle&) = delete;
    InvariantOracle& operator=(const InvariantOracle&) = delete;

    /// Stop observing (idempotent; also done by the destructor).
    void detach();

    /// Run the structural scan once more; call after the simulation
    /// finished to validate the final state.
    void final_check();

    bool ok() const { return violation_count_ == 0; }
    std::uint64_t violation_count() const { return violation_count_; }
    const std::vector<std::string>& violations() const { return violations_; }
    std::uint64_t events_seen() const { return events_; }

    /// One line per recorded violation (empty string when ok()).
    std::string summary() const;

    // ---- SimObserver ----
    void on_state_change(const sim::TThread& t, sim::ThreadState from,
                         sim::ThreadState to, sysc::Time at) override;
    void on_dispatch(const sim::TThread& t, sysc::Time at) override;
    void on_preemption(const sim::TThread& t, sysc::Time at) override;
    void on_interrupt_enter(const sim::TThread& isr, sysc::Time at) override;
    void on_interrupt_return(const sim::TThread& isr, sysc::Time at) override;
    void on_wakeup(const sim::TThread& t, const sim::TThread* by,
                   sysc::Time at) override;
    void on_idle(sysc::Time at) override;
    void on_service_enter(const sim::TThread& t, sysc::Time at) override;
    void on_service_exit(const sim::TThread& t, sysc::Time at) override;

private:
    void violate(const char* rule, const std::string& detail, sysc::Time at);
    void note_time(sysc::Time at);

    void check_transition(const sim::TThread& t, sim::ThreadState from,
                          sim::ThreadState to, sysc::Time at);
    void structural_scan(sysc::Time at);

    // individual structural rules (see header comment)
    void scan_tasks(sysc::Time at);
    void scan_queue(const tkernel::WaitQueue& q, tkernel::WaitKind kind,
                    tkernel::ID obj, const char* what, sysc::Time at);
    void scan_sync_objects(sysc::Time at);
    void scan_mutexes(sysc::Time at);

    tkernel::TKernel* os_;
    Options opts_;
    bool attached_ = false;

    std::uint64_t events_ = 0;
    std::uint64_t violation_count_ = 0;
    std::vector<std::string> violations_;
    sysc::Time last_time_{};
    std::unordered_map<sim::ThreadId, sim::ThreadState> last_state_;
};

}  // namespace rtk::harness::fuzz
