// The process-level half of the campaign engine: fan a campaign
// directory's pending jobs out across shard *processes* and survive any
// of them dying.
//
// One execution round:
//
//   1. scan the shard stores, diff against the job list -> pending ids
//   2. write round_NNN.list (atomic+durable) + its zeroed cursor
//   3. fork/exec `shards` workers:  <exe> shard <dir> --id K --runlist F
//   4. each worker leases id batches from the shared ClaimQueue cursor
//      and appends result records to its own fresh store file
//   5. waitpid() all workers; a non-zero or signalled exit is counted,
//      not fatal
//
// Rounds repeat until no job is pending (or a round makes no progress,
// which means the corpus itself is broken). Because a killed worker
// only loses records it never flushed, `resume` is the same loop: the
// next round's runlist simply contains fewer ids. The merged report is
// a pure function of the accumulated records (campaign.hpp), so an
// interrupted-and-resumed campaign reports byte-identically to an
// uninterrupted one.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/campaign.hpp"

namespace rtk::harness::campaign {

// ---- shard worker -----------------------------------------------------------

/// Worker-process entry point (the `shard` verb of rtk-campaign): lease
/// job-id batches from the round's shared cursor, run each job, stream
/// records into this shard's store file. Returns a process exit code
/// (0 = clean, including "queue already drained").
int run_shard(const std::string& dir, unsigned shard_id,
              const std::string& runlist);

// ---- engine -----------------------------------------------------------------

struct EngineOptions {
    /// Shard processes per round (0 = hardware concurrency).
    unsigned shards = 0;
    /// Worker executable; must implement the `shard` verb above. Empty =
    /// this very executable (self_executable()).
    std::string worker_exe;
    /// Safety valve: give up after this many rounds even if jobs remain.
    std::size_t max_rounds = 8;
    /// Run shard workers serially in-process instead of fork/exec --
    /// for environments without /proc/self/exe or a worker binary.
    bool in_process = false;
    bool verbose = false;
};

struct EngineResult {
    bool complete = false;       ///< every job has a record
    std::size_t rounds = 0;      ///< rounds executed by this invocation
    std::size_t total_jobs = 0;
    std::size_t done_jobs = 0;   ///< jobs with a record after the last round
    std::size_t shard_failures = 0;  ///< workers that exited dirty
    std::string error;           ///< empty unless the engine itself failed
};

/// Run -- or resume, the two are the same loop -- the campaign in `dir`.
EngineResult run_campaign(const std::string& dir, const EngineOptions& opts);

// ---- round bookkeeping (exposed for the crash-recovery suite) --------------

struct Round {
    unsigned index = 0;
    std::string runlist;            ///< round_NNN.list (written, durable)
    std::vector<std::uint64_t> pending;  ///< job ids still missing records
};

/// Diff stores against the job list and write the next round's runlist +
/// zeroed cursor. `out.pending` empty means the campaign is complete
/// (no files are written then).
bool prepare_round(const std::string& dir, Round& out,
                   std::string* error = nullptr);

/// fork/exec one shard worker; returns the pid, or -1 with `*error` set.
long spawn_shard(const std::string& exe, const std::string& dir,
                 unsigned shard_id, const std::string& runlist,
                 std::string* error = nullptr);

/// Block until `pid` exits. True for a clean exit 0; otherwise `*status`
/// (when given) describes the death ("exit 3", "signal 9").
bool wait_shard(long pid, std::string* status = nullptr);

/// This process's executable path (/proc/self/exe), empty on failure.
std::string self_executable();

// ---- status -----------------------------------------------------------------

struct CampaignStatus {
    bool ok = false;
    std::string error;
    Manifest manifest;
    std::size_t total_jobs = 0;
    std::size_t done_jobs = 0;
    std::size_t store_files = 0;
    std::size_t skipped_lines = 0;
    std::size_t duplicates = 0;
    /// Outcome/verdict tallies ("masked", "ok", "mismatch", "skipped"...).
    std::map<std::string, std::size_t> tallies;
};

CampaignStatus query_status(const std::string& dir);

}  // namespace rtk::harness::campaign
