#include "harness/fuzz_oracle.hpp"

#include <algorithm>
#include <cstdio>

#include "api/error.hpp"

namespace rtk::harness::fuzz {

using sim::ThreadKind;
using sim::ThreadState;
using sim::TThread;
using namespace rtk::tkernel;

namespace {

/// "semaphore (TTW_SEM)" -- the wait factor with its spec-level TTW_*
/// mnemonic, so violation reports read like tk_ref_tsk output.
std::string wait_cause(WaitKind k) {
    return std::string(to_string(k)) + " (" +
           api::ttw_to_string(wait_kind_to_ttw(k)) + ")";
}

ATR mutex_protocol(const Mutex& m) {
    return m.atr & 0x3;
}

/// Replica of the kernel's eventflag release condition (eventflag.cpp).
bool flag_satisfied(UINT pattern, UINT waiptn, UINT wfmode) {
    if ((wfmode & TWF_ORW) != 0) {
        return (pattern & waiptn) != 0;
    }
    return (pattern & waiptn) == waiptn;
}

std::string fmt_at(sysc::Time at) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6f ms", at.to_ms());
    return buf;
}

std::string thread_tag(const TThread& t) {
    return "'" + t.name() + "'(#" + std::to_string(t.id()) + ")";
}

bool legal_transition(ThreadState from, ThreadState to) {
    switch (from) {
        case ThreadState::non_existent:
            return to == ThreadState::dormant;
        case ThreadState::dormant:
            // Tasks start READY; handlers are launched straight to RUNNING.
            return to == ThreadState::ready || to == ThreadState::running;
        case ThreadState::ready:
            return to == ThreadState::running || to == ThreadState::suspended ||
                   to == ThreadState::dormant;
        case ThreadState::running:
            return to == ThreadState::ready || to == ThreadState::waiting ||
                   to == ThreadState::waiting_suspended ||
                   to == ThreadState::suspended || to == ThreadState::dormant;
        case ThreadState::waiting:
            return to == ThreadState::ready || to == ThreadState::waiting_suspended ||
                   to == ThreadState::dormant;
        case ThreadState::suspended:
            return to == ThreadState::ready || to == ThreadState::dormant;
        case ThreadState::waiting_suspended:
            return to == ThreadState::waiting || to == ThreadState::suspended ||
                   to == ThreadState::dormant;
    }
    return false;
}

}  // namespace

InvariantOracle::InvariantOracle(TKernel& os, Options opts)
    : os_(&os), opts_(opts) {
    if (os_->config().policy != TKernel::SchedPolicy::priority_preemptive) {
        opts_.priority_dispatch = false;  // D1 is a priority-policy law
    }
    os_->sim().add_observer(this);
    attached_ = true;
}

InvariantOracle::~InvariantOracle() {
    detach();
}

void InvariantOracle::detach() {
    if (attached_) {
        os_->sim().remove_observer(this);
        attached_ = false;
    }
}

void InvariantOracle::violate(const char* rule, const std::string& detail,
                              sysc::Time at) {
    ++violation_count_;
    if (violations_.size() < opts_.max_recorded) {
        violations_.push_back(std::string("[") + rule + "] " + detail + " @ " +
                              fmt_at(at));
    }
}

std::string InvariantOracle::summary() const {
    std::string out;
    for (const std::string& v : violations_) {
        if (!out.empty()) {
            out += "; ";
        }
        out += v;
    }
    if (violation_count_ > violations_.size()) {
        out += "; (+" + std::to_string(violation_count_ - violations_.size()) +
               " more)";
    }
    return out;
}

void InvariantOracle::note_time(sysc::Time at) {
    ++events_;
    if (at < last_time_) {
        violate("T1", "event time went backwards (" + fmt_at(at) + " after " +
                          fmt_at(last_time_) + ")",
                at);
    }
    last_time_ = at;
}

// ---- event checks -----------------------------------------------------------

void InvariantOracle::check_transition(const TThread& t, ThreadState from,
                                       ThreadState to, sysc::Time at) {
    auto it = last_state_.find(t.id());
    if (it != last_state_.end() && it->second != from) {
        violate("T2", thread_tag(t) + " transition from " +
                          sim::to_string(from) + " but last observed state was " +
                          sim::to_string(it->second),
                at);
    }
    if (!legal_transition(from, to)) {
        violate("T2", thread_tag(t) + " illegal transition " +
                          sim::to_string(from) + " -> " + sim::to_string(to),
                at);
    }
    last_state_[t.id()] = to;
}

void InvariantOracle::on_state_change(const TThread& t, ThreadState from,
                                      ThreadState to, sysc::Time at) {
    note_time(at);
    check_transition(t, from, to, at);
}

void InvariantOracle::on_dispatch(const TThread& t, sysc::Time at) {
    note_time(at);
    if (t.kind() != ThreadKind::task) {
        violate("D1", "dispatched thread " + thread_tag(t) + " is not a task", at);
    }
    if (opts_.priority_dispatch) {
        for (const TThread* other : os_->sim().hash_table().threads()) {
            if (other != &t && other->kind() == ThreadKind::task &&
                other->state() == ThreadState::ready &&
                other->priority() < t.priority()) {
                violate("D1", "dispatched " + thread_tag(t) + " (pri " +
                                  std::to_string(t.priority()) + ") while " +
                                  thread_tag(*other) + " (pri " +
                                  std::to_string(other->priority()) + ") is READY",
                        at);
            }
        }
    }
    if (opts_.structural) {
        structural_scan(at);
    }
}

void InvariantOracle::on_preemption(const TThread& t, sysc::Time at) {
    note_time(at);
    (void)t;
}

void InvariantOracle::on_interrupt_enter(const TThread& isr, sysc::Time at) {
    note_time(at);
    if (isr.kind() == ThreadKind::task) {
        violate("T2", "task " + thread_tag(isr) + " entered as interrupt handler",
                at);
    }
}

void InvariantOracle::on_interrupt_return(const TThread& isr, sysc::Time at) {
    note_time(at);
    (void)isr;
}

void InvariantOracle::on_wakeup(const TThread& t, const TThread* by,
                                sysc::Time at) {
    note_time(at);
    (void)t;
    (void)by;
}

void InvariantOracle::on_service_enter(const TThread& t, sysc::Time at) {
    note_time(at);
    (void)t;
}

void InvariantOracle::on_service_exit(const TThread& t, sysc::Time at) {
    note_time(at);
    (void)t;
}

void InvariantOracle::on_idle(sysc::Time at) {
    note_time(at);
    for (const TThread* t : os_->sim().hash_table().threads()) {
        if (t->kind() == ThreadKind::task && t->state() == ThreadState::ready) {
            violate("D2", "CPU idles while " + thread_tag(*t) + " is READY", at);
        }
    }
    if (opts_.structural) {
        structural_scan(at);
    }
}

void InvariantOracle::final_check() {
    structural_scan(last_time_);
}

// ---- structural scans -------------------------------------------------------

void InvariantOracle::structural_scan(sysc::Time at) {
    scan_tasks(at);
    scan_sync_objects(at);
    scan_mutexes(at);
}

void InvariantOracle::scan_tasks(sysc::Time at) {
    // T3: at most one RUNNING task-kind thread, and it is running_task().
    const TThread* running = nullptr;
    for (const TThread* t : os_->sim().hash_table().threads()) {
        if (t->kind() == ThreadKind::task) {
            if (t->state() == ThreadState::running) {
                if (running != nullptr) {
                    violate("T3", "both " + thread_tag(*running) + " and " +
                                      thread_tag(*t) + " are RUNNING",
                            at);
                }
                running = t;
            }
            // T4: scheduler membership <=> READY.
            if (t->ready_node().linked != (t->state() == ThreadState::ready)) {
                violate("T4", thread_tag(*t) + " is " + sim::to_string(t->state()) +
                                  (t->ready_node().linked
                                       ? " but linked in the ready structure"
                                       : " but missing from the ready structure"),
                        at);
            }
        } else {
            // Handlers only ever rest DORMANT or execute RUNNING.
            if (t->state() != ThreadState::dormant &&
                t->state() != ThreadState::running) {
                violate("T2", "handler " + thread_tag(*t) + " in state " +
                                  sim::to_string(t->state()),
                        at);
            }
            if (t->ready_node().linked) {
                violate("T4", "handler " + thread_tag(*t) + " in ready structure",
                        at);
            }
        }
    }
    if (os_->sim().running_task() != running) {
        violate("T3", std::string("running_task() disagrees with thread states (") +
                          (running != nullptr ? thread_tag(*running)
                                              : std::string("none")) +
                          " observed)",
                at);
    }

    // W2 per task: wait bookkeeping is consistent both ways.
    for (ID tid : os_->tasks().ids()) {
        const TCB* tcb = os_->tasks().find(tid);
        if (tcb == nullptr || tcb->thread == nullptr) {
            violate("W2", "task id " + std::to_string(tid) + " has no thread", at);
            continue;
        }
        const ThreadState st = tcb->thread->state();
        const bool waiting_state =
            st == ThreadState::waiting || st == ThreadState::waiting_suspended;
        if (waiting_state && tcb->wait_kind == WaitKind::none) {
            violate("W2", "task " + tcb->name + " is " + sim::to_string(st) +
                              " without a wait factor",
                    at);
        }
        if (!waiting_state && tcb->wait_kind != WaitKind::none) {
            violate("W2", "task " + tcb->name + " has wait factor " +
                              wait_cause(tcb->wait_kind) + " in state " +
                              sim::to_string(st),
                    at);
        }
        // Wait factor <-> queue membership and object identity.
        const WaitQueue* expected_queue = nullptr;
        switch (tcb->wait_kind) {
            case WaitKind::none:
            case WaitKind::sleep:
            case WaitKind::delay:
                break;
            case WaitKind::semaphore: {
                const Semaphore* o = os_->semaphores().find(tcb->wait_obj);
                expected_queue = o != nullptr ? &o->queue : nullptr;
                break;
            }
            case WaitKind::eventflag: {
                const EventFlag* o = os_->eventflags().find(tcb->wait_obj);
                expected_queue = o != nullptr ? &o->queue : nullptr;
                break;
            }
            case WaitKind::mailbox: {
                const Mailbox* o = os_->mailboxes().find(tcb->wait_obj);
                expected_queue = o != nullptr ? &o->queue : nullptr;
                break;
            }
            case WaitKind::mutex: {
                const Mutex* o = os_->mutexes().find(tcb->wait_obj);
                expected_queue = o != nullptr ? &o->queue : nullptr;
                break;
            }
            case WaitKind::msgbuf_snd: {
                const MessageBuffer* o = os_->message_buffers().find(tcb->wait_obj);
                expected_queue = o != nullptr ? &o->send_queue : nullptr;
                break;
            }
            case WaitKind::msgbuf_rcv: {
                const MessageBuffer* o = os_->message_buffers().find(tcb->wait_obj);
                expected_queue = o != nullptr ? &o->recv_queue : nullptr;
                break;
            }
            case WaitKind::mempool_fixed: {
                const FixedPool* o = os_->fixed_pools().find(tcb->wait_obj);
                expected_queue = o != nullptr ? &o->queue : nullptr;
                break;
            }
            case WaitKind::mempool_var: {
                const VariablePool* o = os_->variable_pools().find(tcb->wait_obj);
                expected_queue = o != nullptr ? &o->queue : nullptr;
                break;
            }
        }
        const bool queue_kind = tcb->wait_kind != WaitKind::none &&
                                tcb->wait_kind != WaitKind::sleep &&
                                tcb->wait_kind != WaitKind::delay;
        if (queue_kind) {
            if (expected_queue == nullptr) {
                violate("W2", "task " + tcb->name + " waits on " +
                                  wait_cause(tcb->wait_kind) + " id " +
                                  std::to_string(tcb->wait_obj) +
                                  " which does not exist",
                        at);
            } else if (tcb->queue != expected_queue ||
                       !expected_queue->contains(*tcb)) {
                violate("W2", "task " + tcb->name +
                                  " wait-queue link does not match its wait factor",
                        at);
            }
        } else if (tcb->queue != nullptr) {
            violate("W2", "task " + tcb->name + " linked in a wait queue with " +
                              wait_cause(tcb->wait_kind) +
                              " wait factor",
                    at);
        }
    }
}

void InvariantOracle::scan_queue(const WaitQueue& q, WaitKind kind, ID obj,
                                 const char* what, sysc::Time at) {
    PRI prev = min_priority - 1;
    for (const TCB* w : q.snapshot()) {
        if (w->wait_kind != kind || w->wait_obj != obj) {
            violate("W2", std::string(what) + " " + std::to_string(obj) +
                              " queues task " + w->name + " whose wait factor is " +
                              to_string(w->wait_kind) + " id " +
                              std::to_string(w->wait_obj),
                    at);
        }
        if (q.priority_ordered()) {
            const PRI p = w->thread->priority();
            if (p < prev) {
                violate("W1", std::string(what) + " " + std::to_string(obj) +
                                  " TA_TPRI queue out of order (" + w->name +
                                  " pri " + std::to_string(p) + " after pri " +
                                  std::to_string(prev) + ")",
                        at);
            }
            prev = p;
        }
    }
}

void InvariantOracle::scan_sync_objects(sysc::Time at) {
    for (ID id : os_->semaphores().ids()) {
        const Semaphore* s = os_->semaphores().find(id);
        scan_queue(s->queue, WaitKind::semaphore, id, "semaphore", at);
        if (s->count < 0 || s->count > s->maxsem) {
            violate("L1", "semaphore " + std::to_string(id) + " count " +
                              std::to_string(s->count) + " outside [0, " +
                              std::to_string(s->maxsem) + "]",
                    at);
        }
        if ((s->atr & TA_CNT) != 0) {
            for (const TCB* w : s->queue.snapshot()) {
                if (w->req_count <= s->count) {
                    violate("L1", "semaphore " + std::to_string(id) +
                                      " (TA_CNT) holds count " +
                                      std::to_string(s->count) + " while " +
                                      w->name + " waits for " +
                                      std::to_string(w->req_count),
                            at);
                }
            }
        } else if (const TCB* w = s->queue.front()) {
            if (w->req_count <= s->count) {
                violate("L1", "semaphore " + std::to_string(id) + " holds count " +
                                  std::to_string(s->count) + " while head waiter " +
                                  w->name + " requests " +
                                  std::to_string(w->req_count),
                        at);
            }
        }
    }

    for (ID id : os_->eventflags().ids()) {
        const EventFlag* f = os_->eventflags().find(id);
        scan_queue(f->queue, WaitKind::eventflag, id, "eventflag", at);
        if ((f->atr & TA_WMUL) == 0 && f->queue.size() > 1) {
            violate("W2", "eventflag " + std::to_string(id) +
                              " (TA_WSGL) has multiple waiters",
                    at);
        }
        for (const TCB* w : f->queue.snapshot()) {
            if (flag_satisfied(f->pattern, w->wai_ptn, w->wfmode)) {
                violate("L1", "eventflag " + std::to_string(id) + " pattern 0x" +
                                  std::to_string(f->pattern) +
                                  " satisfies queued waiter " + w->name,
                        at);
            }
        }
    }

    for (ID id : os_->mailboxes().ids()) {
        const Mailbox* m = os_->mailboxes().find(id);
        scan_queue(m->queue, WaitKind::mailbox, id, "mailbox", at);
        if (!m->messages.empty() && !m->queue.empty()) {
            violate("L1", "mailbox " + std::to_string(id) +
                              " has queued messages and waiting receivers",
                    at);
        }
        if ((m->atr & TA_MPRI) != 0) {
            PRI prev = min_priority - 1;
            for (const T_MSG* msg : m->messages) {
                const PRI p = static_cast<const T_MSG_PRI*>(msg)->msgpri;
                if (p < prev) {
                    violate("B1", "mailbox " + std::to_string(id) +
                                      " TA_MPRI message order broken",
                            at);
                }
                prev = p;
            }
        }
    }

    for (ID id : os_->message_buffers().ids()) {
        const MessageBuffer* m = os_->message_buffers().find(id);
        scan_queue(m->send_queue, WaitKind::msgbuf_snd, id, "msgbuf(send)", at);
        scan_queue(m->recv_queue, WaitKind::msgbuf_rcv, id, "msgbuf(recv)", at);
        INT used = 0;
        for (const auto& payload : m->messages) {
            used += static_cast<INT>(payload.size()) + MessageBuffer::header_bytes;
        }
        if (used != m->used || m->used < 0 || m->used > m->bufsz) {
            violate("B1", "msgbuf " + std::to_string(id) + " byte accounting " +
                              std::to_string(m->used) + " != recomputed " +
                              std::to_string(used) + " (bufsz " +
                              std::to_string(m->bufsz) + ")",
                    at);
        }
        if (!m->recv_queue.empty() && !m->messages.empty()) {
            violate("L1", "msgbuf " + std::to_string(id) +
                              " buffers messages while receivers wait",
                    at);
        }
        if (!m->recv_queue.empty() && !m->send_queue.empty() &&
            m->messages.empty()) {
            violate("L1", "msgbuf " + std::to_string(id) +
                              " missed a sender/receiver rendezvous",
                    at);
        }
        if (const TCB* s = m->send_queue.front()) {
            if (m->fits(s->snd_size)) {
                violate("L1", "msgbuf " + std::to_string(id) + " has space for " +
                                  s->name + "'s blocked " +
                                  std::to_string(s->snd_size) + "-byte send",
                        at);
            }
        }
    }

    for (ID id : os_->fixed_pools().ids()) {
        const FixedPool* p = os_->fixed_pools().find(id);
        scan_queue(p->queue, WaitKind::mempool_fixed, id, "fixed pool", at);
        if (p->free_list.size() > static_cast<std::size_t>(p->blkcnt)) {
            violate("B1", "fixed pool " + std::to_string(id) + " free list (" +
                              std::to_string(p->free_list.size()) +
                              ") exceeds block count",
                    at);
        }
        if (!p->queue.empty() && !p->free_list.empty()) {
            violate("L1", "fixed pool " + std::to_string(id) +
                              " has free blocks and waiters",
                    at);
        }
    }

    for (ID id : os_->variable_pools().ids()) {
        const VariablePool* p = os_->variable_pools().find(id);
        scan_queue(p->queue, WaitKind::mempool_var, id, "variable pool", at);
        // Free/allocated extents must exactly tile the arena.
        INT covered = p->total_free();
        for (const auto& [ptr, extent] : p->allocated) {
            covered += extent.second;
        }
        if (covered != p->poolsz) {
            violate("B1", "variable pool " + std::to_string(id) +
                              " free+allocated bytes " + std::to_string(covered) +
                              " != pool size " + std::to_string(p->poolsz),
                    at);
        }
        if (const TCB* w = p->queue.front()) {
            if (w->req_size <= p->largest_free()) {
                violate("L1", "variable pool " + std::to_string(id) +
                                  " could satisfy head waiter " + w->name + " (" +
                                  std::to_string(w->req_size) + " <= " +
                                  std::to_string(p->largest_free()) + " free)",
                        at);
            }
        }
    }
}

void InvariantOracle::scan_mutexes(sysc::Time at) {
    // M1: ownership cross-consistency.
    for (ID id : os_->mutexes().ids()) {
        const Mutex* m = os_->mutexes().find(id);
        scan_queue(m->queue, WaitKind::mutex, id, "mutex", at);
        if (m->owner != nullptr) {
            const TCB* owner = m->owner;
            if (std::find(owner->held_mutexes.begin(), owner->held_mutexes.end(),
                          id) == owner->held_mutexes.end()) {
                violate("M1", "mutex " + std::to_string(id) + " owner " +
                                  owner->name + " does not list it as held",
                        at);
            }
            if (owner->thread->state() == ThreadState::dormant) {
                violate("M1", "mutex " + std::to_string(id) +
                                  " owned by DORMANT task " + owner->name,
                        at);
            }
            if (m->queue.contains(*owner)) {
                violate("M1", "mutex " + std::to_string(id) + " owner " +
                                  owner->name + " queued on its own mutex",
                        at);
            }
        } else if (!m->queue.empty()) {
            violate("M1", "mutex " + std::to_string(id) +
                              " has waiters but no owner",
                    at);
        }
    }

    // M2: the priority law, task by task.
    for (ID tid : os_->tasks().ids()) {
        const TCB* tcb = os_->tasks().find(tid);
        if (tcb == nullptr || tcb->thread == nullptr ||
            tcb->thread->state() == ThreadState::dormant) {
            continue;
        }
        PRI expected = tcb->thread->base_priority();
        bool resolvable = true;
        for (ID mid : tcb->held_mutexes) {
            const Mutex* m = os_->mutexes().find(mid);
            if (m == nullptr) {
                violate("M1", "task " + tcb->name + " holds deleted mutex " +
                                  std::to_string(mid),
                        at);
                resolvable = false;
                continue;
            }
            if (m->owner != tcb) {
                violate("M1", "task " + tcb->name + " lists mutex " +
                                  std::to_string(mid) + " it does not own",
                        at);
                resolvable = false;
                continue;
            }
            if (mutex_protocol(*m) == TA_CEILING) {
                expected = std::min(expected, m->ceilpri);
            } else if (mutex_protocol(*m) == TA_INHERIT) {
                for (const TCB* w : m->queue.snapshot()) {
                    expected = std::min(expected, w->thread->priority());
                }
            }
        }
        if (resolvable && tcb->thread->priority() != expected) {
            violate("M2", "task " + tcb->name + " current priority " +
                              std::to_string(tcb->thread->priority()) +
                              " != expected " + std::to_string(expected) +
                              " (base " +
                              std::to_string(tcb->thread->base_priority()) + ")",
                    at);
        }
    }
}

}  // namespace rtk::harness::fuzz
