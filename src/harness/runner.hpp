// ScenarioRunner -- fans a batch of ScenarioSpecs out across a pool of
// host worker threads, one isolated rtk::Simulation per scenario, and
// aggregates the per-scenario results into a structured BatchReport.
//
// This is the "hundreds of configurations in one binary" engine the
// paper's design-space-exploration story implies: scenario i runs in
// whatever worker grabs it first, but results[i] always corresponds to
// specs[i], and every scenario is bit-identical to a serial run of the
// same spec (each Simulation is fully self-contained and kernels are
// thread-local -- see sysc::Kernel::current()).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "harness/scenario.hpp"

namespace rtk::harness {

struct BatchReport {
    /// One result per input spec, in spec order (independent of which
    /// worker executed which scenario).
    std::vector<ScenarioResult> results;
    /// Worker threads used and wall-clock time of the whole batch.
    unsigned threads = 1;
    double wall_seconds = 0.0;
    /// Batch-level infrastructure failure (e.g. thread-pool creation
    /// threw); empty on a clean run. Scenarios still complete -- the
    /// surviving workers (or the calling thread) drain the batch.
    std::string error;

    std::size_t passed() const;
    std::size_t failed() const;
    bool all_passed() const { return failed() == 0; }
    double scenarios_per_second() const;
    /// Sum of per-scenario host times; wall_seconds times the effective
    /// parallelism.
    double total_host_seconds() const;
    /// Number of traced results (ScenarioSpec::trace.enabled runs).
    std::size_t traced() const;
    /// Scalar trace metrics summed over every traced result (per-task
    /// breakdowns stay in the individual results).
    trace::Metrics aggregate_metrics() const;

    /// Serialize to JSON (schema documented in README "Batch scenario
    /// runner"): {"batch": {...aggregates...}, "results": [...]}; traced
    /// batches add a "trace" aggregate and per-result trace members.
    std::string to_json() const;
    /// Write to_json() to `path`; returns false on I/O failure.
    bool write_json(const std::string& path) const;
};

class ScenarioRunner {
public:
    struct Options {
        /// Worker threads; 0 means one per hardware thread. 1 runs the
        /// batch serially on the calling thread.
        unsigned threads = 0;
    };

    ScenarioRunner() = default;
    explicit ScenarioRunner(Options opts) : opts_(opts) {}

    /// Run every spec to completion; never throws (per-scenario errors
    /// land in the corresponding result).
    BatchReport run(const std::vector<ScenarioSpec>& specs) const;

    /// Effective worker count for a batch of `n` scenarios.
    unsigned effective_threads(std::size_t n) const;

private:
    Options opts_;
};

}  // namespace rtk::harness
