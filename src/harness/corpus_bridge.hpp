// The execution bridge between rtk::corpus (pure data: scenario files,
// programs, checks) and the harness (Simulation, ScenarioRunner). A
// ScenarioFile becomes a runnable ScenarioSpec by copying its structural
// api::SystemSpec and attaching behaviour closures per its bindings:
// bound tasks interpret their program in the shared fuzz interpreter
// loop, unbound tasks sleep, bound handlers run their program in handler
// context, unbound handlers are no-ops. The same interpreter the fuzzer
// uses (fuzz_interp) executes every op, so corpus scenarios and fuzz
// specs exercise identical service-call paths.
#pragma once

#include <cstdint>
#include <vector>

#include "corpus/checks.hpp"
#include "corpus/scenario_file.hpp"
#include "harness/fuzz.hpp"
#include "harness/scenario.hpp"

namespace rtk::harness {

/// Hang guard applied when KernelConfig::delta_budget is 0: generated
/// corpus scenarios always advance time, but hand-written files get a
/// bounded run instead of a wedged replay tool.
inline constexpr std::uint64_t corpus_default_delta_budget = 20000000;

/// Outcome of one corpus scenario run: the harness-level result plus the
/// scenario's rate/deadline checks evaluated from the run's metrics.
struct CorpusRunReport {
    ScenarioResult result;
    std::vector<corpus::CheckResult> checks;
    bool checks_passed = true;

    /// Clean run AND every declared check held.
    bool passed() const { return result.passed && checks_passed; }
};

/// Build a runnable ScenarioSpec from a (validated) scenario file.
/// Tracing is NOT enabled here -- callers that evaluate checks must set
/// spec.trace.enabled (run_corpus_scenario does); tracing never changes
/// the behaviour fingerprint. `hooks` intercepts every interpreted op,
/// which is how fault campaigns inject into corpus workloads.
ScenarioSpec scenario_from_corpus(const corpus::ScenarioFile& file,
                                  fuzz::WorkloadHooks hooks = {});

/// Run one scenario file to completion (traced) and evaluate its checks.
CorpusRunReport run_corpus_scenario(const corpus::ScenarioFile& file);

/// Lower a scenario file onto the fuzzer's spec model so the existing
/// fault/differential pipelines can consume corpus workloads unchanged
/// (campaign --corpus <dir>). Structural parameters and bound programs
/// carry over exactly; object names do not (FuzzSpec objects are
/// positional), so fingerprints of the two paths are not comparable --
/// campaigns re-profile their own baselines.
fuzz::FuzzSpec corpus_to_fuzz_spec(const corpus::ScenarioFile& file);

}  // namespace rtk::harness
