#include "harness/campaign_store.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

namespace rtk::harness::campaign {

namespace {

bool fail(std::string* error, const std::string& what) {
    if (error != nullptr) {
        *error = what;
    }
    return false;
}

std::string errno_detail(const std::string& what) {
    return what + ": " + std::strerror(errno);
}

}  // namespace

// ---- JsonlAppender ----------------------------------------------------------

JsonlAppender::~JsonlAppender() { close(); }

bool JsonlAppender::open(const std::string& path, std::size_t flush_every,
                         std::string* error) {
    close();
    // O_RDWR (not O_WRONLY): the tail-repair probe below pread()s the
    // last byte. O_APPEND still routes every write to the end.
    const int fd =
        ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) {
        return fail(error, errno_detail("cannot open " + path));
    }
    // Tail repair: if the last byte of an existing file is not '\n', a
    // previous writer died mid-line. A lone newline isolates that torn
    // line (read_jsonl skips it) instead of fusing it with our first
    // record. Shard stores are fresh files so this only triggers for
    // long-lived stores like a fuzz/fault campaign's results.jsonl.
    const off_t size = ::lseek(fd, 0, SEEK_END);
    if (size > 0) {
        char last = '\n';
        if (::pread(fd, &last, 1, size - 1) == 1 && last != '\n') {
            if (::write(fd, "\n", 1) != 1) {
                ::close(fd);
                return fail(error, errno_detail("cannot repair tail of " + path));
            }
        }
    }
    fd_ = fd;
    path_ = path;
    staged_.clear();
    staged_records_ = 0;
    flush_every_ = flush_every == 0 ? 1 : flush_every;
    appended_ = 0;
    return true;
}

bool JsonlAppender::write_all(const char* data, std::size_t size) {
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::write(fd_, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

bool JsonlAppender::append(std::string_view line) {
    if (fd_ < 0) {
        return false;
    }
    staged_.append(line);
    staged_.push_back('\n');
    ++staged_records_;
    ++appended_;
    if (staged_records_ >= flush_every_) {
        return sync();
    }
    return true;
}

bool JsonlAppender::sync() {
    if (fd_ < 0) {
        return false;
    }
    if (!staged_.empty()) {
        if (!write_all(staged_.data(), staged_.size())) {
            return false;
        }
        staged_.clear();
        staged_records_ = 0;
    }
    return ::fsync(fd_) == 0;
}

bool JsonlAppender::close() {
    if (fd_ < 0) {
        return true;
    }
    const bool ok = sync();
    ::close(fd_);
    fd_ = -1;
    return ok;
}

// ---- tolerant reader --------------------------------------------------------

std::vector<api::Json> read_jsonl(const std::string& path,
                                  std::size_t* skipped) {
    std::vector<api::Json> records;
    std::size_t bad = 0;
    std::ifstream in(path, std::ios::binary);
    if (in) {
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty()) {
                continue;
            }
            api::Json rec;
            if (api::Json::parse(line, rec) && rec.is_object()) {
                records.push_back(std::move(rec));
            } else {
                ++bad;  // torn tail of a killed writer, or garbage
            }
        }
    }
    if (skipped != nullptr) {
        *skipped = bad;
    }
    return records;
}

// ---- ClaimQueue -------------------------------------------------------------

ClaimQueue::~ClaimQueue() { close(); }

bool ClaimQueue::open(const std::string& cursor_path, std::string* error) {
    close();
    fd_ = ::open(cursor_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) {
        return fail(error, errno_detail("cannot open cursor " + cursor_path));
    }
    return true;
}

bool ClaimQueue::claim(std::uint64_t total, std::uint64_t batch,
                       std::uint64_t& begin, std::uint64_t& end) {
    if (fd_ < 0 || batch == 0) {
        return false;
    }
    while (::flock(fd_, LOCK_EX) != 0) {
        if (errno != EINTR) {
            return false;
        }
    }
    bool claimed = false;
    char buf[32] = {0};
    const ssize_t n = ::pread(fd_, buf, sizeof buf - 1, 0);
    std::uint64_t cursor = 0;
    if (n > 0) {
        // Unparseable content (torn write, garbage) heals to cursor 0:
        // jobs may re-run, but re-runs are deterministic and the merge
        // dedupes records by job id, so correctness is unaffected.
        char* parse_end = nullptr;
        const unsigned long long v = std::strtoull(buf, &parse_end, 10);
        if (parse_end != buf) {
            cursor = v;
        }
    }
    if (cursor < total) {
        begin = cursor;
        end = cursor + batch < total ? cursor + batch : total;
        const std::string next = std::to_string(end);
        if (::ftruncate(fd_, 0) == 0 &&
            ::pwrite(fd_, next.data(), next.size(), 0) ==
                static_cast<ssize_t>(next.size())) {
            claimed = true;
        }
    }
    ::flock(fd_, LOCK_UN);
    return claimed;
}

void ClaimQueue::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

}  // namespace rtk::harness::campaign
