// Declarative scenario descriptions for batch design-space exploration.
//
// A ScenarioSpec is everything needed to reproduce one co-simulation run:
// the kernel Config, a workload builder, a duration and a seed. Running a
// spec (run_scenario) constructs a fresh rtk::Simulation, lets the
// workload wire tasks/resources/devices, boots, simulates for `duration`
// and distills the run into a ScenarioResult -- including a 64-bit
// fingerprint over the observable behaviour (stats + Gantt trace) used by
// the determinism suite to assert that serial and parallel execution of
// the same spec are bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "api/builder.hpp"
#include "harness/simulation.hpp"
#include "sim/stats.hpp"
#include "sysc/time.hpp"
#include "trace/metrics.hpp"

namespace rtk::harness {

/// Opt-in binary tracing of one scenario run (see src/trace). Off by
/// default: with `enabled == false` no Recorder is attached and the run
/// is byte-identical to an untraced one.
struct TraceConfig {
    bool enabled = false;
    /// When non-empty, the .rtktrace image is written here after the run.
    std::string path;
    /// Ring budget handed to trace::RecorderOptions::buffer_bytes.
    std::size_t buffer_bytes = std::size_t{4} << 20;
    /// Keep the serialized .rtktrace bytes in ScenarioResult::trace_data
    /// (campaigns write traces selectively after classification).
    bool keep_bytes = false;
};

/// ScenarioResult::error value set when the check predicate returns
/// false (as opposed to a simulation error's exception message).
inline constexpr const char* check_failed_error = "check predicate failed";

struct ScenarioSpec {
    /// Scenario name; also keys the per-scenario entry in BatchReport.
    std::string name;
    /// Kernel configuration under test (tick, costs, semantic toggles).
    Simulation::Config config{};
    /// Free parameter for workload randomization; identical (spec, seed)
    /// pairs must produce bit-identical runs.
    std::uint64_t seed = 0;
    /// Simulated time to run after power-on.
    sysc::Time duration = sysc::Time::ms(100);
    /// Builds the workload: called on the freshly constructed Simulation
    /// before power_on() -- typically installs the user main (task and
    /// resource creation) and may attach BFM devices via sim.retain().
    std::function<void(Simulation&, const ScenarioSpec&)> workload;
    /// Optional pass/fail predicate evaluated after the run; a scenario
    /// without one passes unless the simulation itself errors.
    std::function<bool(Simulation&, const ScenarioSpec&)> check;
    /// When non-empty, a VCD trace of kernel activity (system time, tick
    /// count, running task) is written here during the run.
    std::string vcd_path;
    /// Hang guard: abort the run after this many simulation delta cycles
    /// and mark the result hung (0 = unlimited). Used by fault-injection
    /// campaigns to classify livelocked runs instead of spinning forever.
    std::uint64_t delta_budget = 0;
    /// Non-intrusive binary tracing of this run (off by default).
    TraceConfig trace{};
};

struct ScenarioResult {
    std::string name;
    std::uint64_t seed = 0;
    bool passed = false;
    /// Failure detail: check-predicate failure or the SimError message.
    std::string error;
    /// True when the run blew through ScenarioSpec::delta_budget (the
    /// simulation livelocked before reaching `duration`).
    bool hung = false;
    /// Simulated time reached and host wall-clock cost of the run.
    sysc::Time sim_time{};
    double host_seconds = 0.0;
    /// System-wide roll-up at end of run (CET/CEE distribution, counters).
    sim::SystemStats stats;
    /// Gantt summary: recorded execution segments and point markers.
    std::uint64_t gantt_segments = 0;
    std::uint64_t gantt_markers = 0;
    /// FNV-1a digest over the observable behaviour (sim time, counters,
    /// per-thread CET/CEE, full Gantt trace). Equal specs must yield
    /// equal fingerprints regardless of host threading.
    std::uint64_t fingerprint = 0;
    // ---- filled only when ScenarioSpec::trace.enabled ----
    bool traced = false;
    /// Where the .rtktrace file landed (TraceConfig::path, when set).
    std::string trace_path;
    std::uint64_t trace_events = 0;
    std::uint64_t trace_dropped = 0;
    /// Derived per-run metrics (complete even if the raw stream dropped).
    trace::Metrics metrics;
    /// Raw .rtktrace image when TraceConfig::keep_bytes was set.
    std::string trace_data;
};

/// Run one scenario to completion in a fresh, isolated Simulation.
/// Never throws: simulation errors are captured into the result.
ScenarioResult run_scenario(const ScenarioSpec& spec);

/// Per-run hook of scenario_from_system: runs inside the user main after
/// the system graph is instantiated, with this run's live handles. Runs
/// on whatever worker thread executes the scenario -- do not mutate
/// state shared across concurrent runs from it.
using SystemWire = std::function<void(Simulation&, api::SystemHandles&)>;

/// Build a ScenarioSpec whose workload constructs `system` through
/// api::SystemBuilder/instantiate inside the Simulation's user main --
/// the declarative "scenario as data" path. Instantiation failure
/// surfaces as a simulation error in the ScenarioResult. The handle
/// graph is retained for the run (released to the kernel for teardown);
/// `wire` can start tasks, attach extra behaviour or stash run-local
/// state.
ScenarioSpec scenario_from_system(std::string name, api::SystemSpec system,
                                  Simulation::Config config = {},
                                  sysc::Time duration = sysc::Time::ms(100),
                                  SystemWire wire = nullptr);

/// The behaviour digest used by ScenarioResult::fingerprint (exposed for
/// tests that want to fingerprint a hand-driven Simulation).
std::uint64_t fingerprint_simulation(const Simulation& sim);

}  // namespace rtk::harness
