#include "harness/scenario.hpp"

#include <chrono>
#include <cstring>
#include <memory>

#include "sim/gantt.hpp"
#include "sim/sim_api.hpp"
#include "sysc/report.hpp"
#include "sysc/trace.hpp"
#include "trace/recorder.hpp"

namespace rtk::harness {

namespace {

// 64-bit FNV-1a; the digest order is fixed so fingerprints are stable
// across runs, threads and (within one build) processes.
class Fnv1a {
public:
    void mix(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            hash_ ^= (v >> (8 * i)) & 0xffu;
            hash_ *= 0x100000001b3ull;
        }
    }
    void mix_double(double d) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        std::memcpy(&bits, &d, sizeof(bits));
        mix(bits);
    }
    void mix_string(const std::string& s) {
        mix(s.size());
        for (char c : s) {
            hash_ ^= static_cast<unsigned char>(c);
            hash_ *= 0x100000001b3ull;
        }
    }
    std::uint64_t value() const { return hash_; }

private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

}  // namespace

std::uint64_t fingerprint_simulation(const Simulation& sim) {
    Fnv1a h;
    h.mix(sim.now().picoseconds());
    const sim::SimApi& api = sim.sim();
    h.mix(api.total_dispatches());
    h.mix(api.total_preemptions());
    h.mix(api.total_interrupt_deliveries());
    h.mix(api.idle_time().picoseconds());
    h.mix(sim.os().systim());
    h.mix(sim.os().tick_count());
    for (const rtk::sim::TThread* t : api.hash_table().threads()) {
        h.mix(static_cast<std::uint64_t>(t->id()));
        h.mix_string(t->name());
        h.mix(t->token().cet().picoseconds());
        h.mix_double(t->token().cee_nj());
        h.mix(t->dispatch_count());
        h.mix(t->preemption_count());
        h.mix(t->times_interrupted());
    }
    const rtk::sim::GanttRecorder& g = api.gantt();
    h.mix(g.segments().size());
    for (const auto& s : g.segments()) {
        h.mix(static_cast<std::uint64_t>(s.tid));
        h.mix(static_cast<std::uint64_t>(s.ctx));
        h.mix(s.start.picoseconds());
        h.mix(s.end.picoseconds());
        h.mix_double(s.energy_nj);
    }
    h.mix(g.markers().size());
    for (const auto& m : g.markers()) {
        h.mix(static_cast<std::uint64_t>(m.kind));
        h.mix(static_cast<std::uint64_t>(m.tid));
        h.mix(m.at.picoseconds());
    }
    return h.value();
}

ScenarioSpec scenario_from_system(std::string name, api::SystemSpec system,
                                  Simulation::Config config, sysc::Time duration,
                                  SystemWire wire) {
    ScenarioSpec sc;
    sc.name = std::move(name);
    sc.config = config;
    sc.duration = duration;
    auto spec_ptr = std::make_shared<const api::SystemSpec>(std::move(system));
    sc.workload = [spec_ptr, wire](Simulation& sim, const ScenarioSpec&) {
        // The facade and the handle graph live as long as the run:
        // retained on the Simulation, the System outliving the handles
        // minted from it (reverse retention order).
        auto sys = std::make_shared<api::System>(sim.os());
        sim.retain(sys);
        auto holder = std::make_shared<api::SystemHandles>();
        sim.retain(holder);
        Simulation* simp = &sim;
        sim.set_user_main([spec_ptr, sys, holder, wire, simp] {
            auto handles = api::instantiate(*sys, *spec_ptr);
            if (!handles.ok()) {
                sysc::report(sysc::Severity::fatal, "harness",
                             std::string("SystemSpec instantiation failed: ") +
                                 api::er_describe(handles.er()));
            }
            *holder = std::move(handles).value();
            if (wire) {
                wire(*simp, *holder);
            }
            // Ownership goes to the kernel: teardown reclaims the graph
            // wholesale, handles stay valid for calls during the run.
            holder->release_all();
        });
    };
    return sc;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
    ScenarioResult r;
    r.name = spec.name;
    r.seed = spec.seed;
    const auto host_start = std::chrono::steady_clock::now();
    try {
        Simulation sim(spec.config);
        if (!spec.vcd_path.empty()) {
            auto trace = std::make_shared<sysc::TraceFile>(sim.kernel(), spec.vcd_path);
            tkernel::TKernel* os = &sim.os();
            trace->trace_value("systim", 32,
                               [os] { return static_cast<std::uint64_t>(os->systim()); });
            trace->trace_value("tick_count", 32, [os] { return os->tick_count(); });
            sim::SimApi* api = &sim.sim();
            trace->trace_value("running_task", 16, [api] {
                const rtk::sim::TThread* t = api->running_task();
                return t == nullptr ? 0ull : static_cast<std::uint64_t>(t->id());
            });
            sim.retain(std::move(trace));
        }
        std::shared_ptr<trace::Recorder> recorder;
        if (spec.trace.enabled) {
            trace::RecorderOptions opts;
            opts.buffer_bytes = spec.trace.buffer_bytes;
            // Attached before the workload builder runs so task bodies
            // (and fault injectors) can reach it via Recorder::find and
            // no startup event escapes the capture.
            recorder = std::make_shared<trace::Recorder>(sim.sim(), opts);
            sim.retain(recorder);
        }
        if (spec.workload) {
            spec.workload(sim, spec);
        }
        if (spec.delta_budget != 0) {
            sim.kernel().set_delta_budget(spec.delta_budget);
        }
        sim.power_on();
        sim.run_until(spec.duration);
        if (recorder != nullptr) {
            recorder->finish(sim.now());
            r.traced = true;
            r.trace_events = recorder->events_recorded();
            r.trace_dropped = recorder->records_dropped();
            r.metrics = recorder->metrics();
            if (!spec.trace.path.empty()) {
                std::string werr;
                if (recorder->write_file(spec.trace.path, &werr)) {
                    r.trace_path = spec.trace.path;
                } else {
                    r.error = werr;
                }
            }
            if (spec.trace.keep_bytes) {
                r.trace_data = recorder->serialize();
            }
        }
        r.hung = sim.kernel().delta_budget_exhausted();
        r.sim_time = sim.now();
        r.stats = sim.stats();
        r.gantt_segments = sim.sim().gantt().segments().size();
        r.gantt_markers = sim.sim().gantt().markers().size();
        r.fingerprint = fingerprint_simulation(sim);
        if (r.hung) {
            // The run was truncated mid-delta-cycle; the check predicate
            // would judge a half-finished state, so it is not consulted.
            r.error = "delta budget exhausted (simulation hung)";
        } else if (spec.check && !spec.check(sim, spec)) {
            r.error = check_failed_error;
        } else if (r.error.empty()) {  // a failed trace write fails the run
            r.passed = true;
        }
    } catch (const std::exception& e) {  // includes sysc::SimError
        r.error = e.what();
    } catch (...) {
        r.error = "unknown exception";
    }
    r.host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - host_start)
            .count();
    return r;
}

}  // namespace rtk::harness
