#include "harness/fuzz_interp.hpp"

#include <algorithm>

namespace rtk::harness::fuzz {

using namespace rtk::tkernel;
using sim::ExecContext;

namespace {

TMO to_tmo(std::int32_t t) {
    return t < 0 ? TMO_FEVR : static_cast<TMO>(t);
}

template <typename Vec>
bool idx_ok(const Vec& v, std::int32_t i) {
    return i >= 0 && static_cast<std::size_t>(i) < v.size();
}

}  // namespace

/// Execute one op. `self` is the invoking task's spec index, -1 in
/// handler context. Handlers never block: their timeouts collapse to
/// TMO_POL and task-state ops (held blocks, message nodes) are skipped.
void exec_op(Runtime& rt, int self, const FuzzOp& op, bool handler) {
    TKernel& tk = *rt.tk;
    const ExecContext ctx = handler ? ExecContext::handler : ExecContext::task;
    const auto tmo = [&](std::int32_t t) { return handler ? TMO_POL : to_tmo(t); };
    switch (op.kind) {
        case OpKind::compute: {
            const std::uint64_t units =
                static_cast<std::uint64_t>(std::clamp(op.a, 1, 5000));
            tk.sim().SIM_WaitUnits(units, ctx);
            return;
        }
        case OpKind::delay:
            if (!handler) {
                tk.tk_dly_tsk(static_cast<RELTIM>(std::clamp(op.a, 1, 50)));
            }
            return;
        case OpKind::sleep:
            if (!handler) {
                tk.tk_slp_tsk(to_tmo(op.a));
            }
            return;
        case OpKind::wakeup:
            if (rt.task_idx_ok(op.a)) {
                tk.tk_wup_tsk(rt.tasks[static_cast<std::size_t>(op.a)]);
            }
            return;
        case OpKind::can_wup:
            if (rt.task_idx_ok(op.a)) {
                tk.tk_can_wup(rt.tasks[static_cast<std::size_t>(op.a)]);
            }
            return;
        case OpKind::rel_wai:
            if (rt.task_idx_ok(op.a)) {
                tk.tk_rel_wai(rt.tasks[static_cast<std::size_t>(op.a)]);
            }
            return;
        case OpKind::suspend:
            if (rt.task_idx_ok(op.a)) {
                tk.tk_sus_tsk(rt.tasks[static_cast<std::size_t>(op.a)]);
            }
            return;
        case OpKind::resume:
            if (rt.task_idx_ok(op.a)) {
                tk.tk_rsm_tsk(rt.tasks[static_cast<std::size_t>(op.a)]);
            }
            return;
        case OpKind::frsm:
            if (rt.task_idx_ok(op.a)) {
                tk.tk_frsm_tsk(rt.tasks[static_cast<std::size_t>(op.a)]);
            }
            return;
        case OpKind::chg_pri:
            if (rt.task_idx_ok(op.a)) {
                tk.tk_chg_pri(rt.tasks[static_cast<std::size_t>(op.a)],
                              std::clamp(op.b, 0, max_priority));
            }
            return;
        case OpKind::rot_rdq:
            tk.tk_rot_rdq(std::clamp(op.a, 0, max_priority));
            return;
        case OpKind::sta_tsk:
            if (rt.task_idx_ok(op.a)) {
                tk.tk_sta_tsk(rt.tasks[static_cast<std::size_t>(op.a)], op.b);
            }
            return;
        case OpKind::ter_tsk:
            if (rt.task_idx_ok(op.a)) {
                tk.tk_ter_tsk(rt.tasks[static_cast<std::size_t>(op.a)]);
            }
            return;
        case OpKind::ext_tsk:
            if (!handler) {
                tk.tk_ext_tsk();  // does not return
            }
            return;
        case OpKind::sem_wait:
            if (idx_ok(rt.sems, op.a)) {
                tk.tk_wai_sem(rt.sems[static_cast<std::size_t>(op.a)],
                              std::clamp(op.b, 1, 1 << 16), tmo(op.c));
            }
            return;
        case OpKind::sem_signal:
            if (idx_ok(rt.sems, op.a)) {
                tk.tk_sig_sem(rt.sems[static_cast<std::size_t>(op.a)],
                              std::clamp(op.b, 1, 1 << 16));
            }
            return;
        case OpKind::flg_set:
            if (idx_ok(rt.flgs, op.a)) {
                tk.tk_set_flg(rt.flgs[static_cast<std::size_t>(op.a)],
                              static_cast<UINT>(op.b));
            }
            return;
        case OpKind::flg_clr:
            if (idx_ok(rt.flgs, op.a)) {
                tk.tk_clr_flg(rt.flgs[static_cast<std::size_t>(op.a)],
                              static_cast<UINT>(op.b));
            }
            return;
        case OpKind::flg_wait:
            if (idx_ok(rt.flgs, op.a)) {
                static constexpr UINT modes[6] = {
                    TWF_ANDW,           TWF_ORW,
                    TWF_ANDW | TWF_CLR, TWF_ORW | TWF_CLR,
                    TWF_ANDW | TWF_BITCLR, TWF_ORW | TWF_BITCLR,
                };
                UINT got = 0;
                tk.tk_wai_flg(rt.flgs[static_cast<std::size_t>(op.a)],
                              static_cast<UINT>(op.b == 0 ? 1 : op.b),
                              modes[static_cast<std::size_t>(std::clamp(op.c, 0, 5))],
                              &got, tmo(op.d));
            }
            return;
        case OpKind::mtx_lock:
            if (idx_ok(rt.mtxs, op.a)) {
                tk.tk_loc_mtx(rt.mtxs[static_cast<std::size_t>(op.a)], tmo(op.b));
            }
            return;
        case OpKind::mtx_unlock:
            if (idx_ok(rt.mtxs, op.a)) {
                tk.tk_unl_mtx(rt.mtxs[static_cast<std::size_t>(op.a)]);
            }
            return;
        case OpKind::mbx_send:
            if (idx_ok(rt.mbxs, op.a) && idx_ok(rt.mbx_pools, op.a)) {
                auto& pool = rt.mbx_pools[static_cast<std::size_t>(op.a)];
                if (!pool.free.empty()) {
                    T_MSG_PRI* node = pool.free.back();
                    pool.free.pop_back();
                    node->msgpri = std::clamp(op.b, 1, max_priority);
                    tk.tk_snd_mbx(rt.mbxs[static_cast<std::size_t>(op.a)], node);
                }
            }
            return;
        case OpKind::mbx_recv:
            if (!handler && self >= 0 && idx_ok(rt.mbxs, op.a) &&
                idx_ok(rt.mbx_pools, op.a)) {
                T_MSG* msg = nullptr;
                if (tk.tk_rcv_mbx(rt.mbxs[static_cast<std::size_t>(op.a)], &msg,
                                  tmo(op.b)) == E_OK &&
                    msg != nullptr) {
                    rt.mbx_pools[static_cast<std::size_t>(op.a)].free.push_back(
                        static_cast<T_MSG_PRI*>(msg));
                }
            }
            return;
        case OpKind::mbf_send:
            if (!handler && rt.task_rt_ok(self) && idx_ok(rt.mbfs, op.a)) {
                auto& buf = rt.task_rt[static_cast<std::size_t>(self)].snd_buf;
                const INT sz =
                    std::clamp(op.b, 1, static_cast<INT>(buf.size()));
                tk.tk_snd_mbf(rt.mbfs[static_cast<std::size_t>(op.a)], buf.data(),
                              sz, tmo(op.c));
            }
            return;
        case OpKind::mbf_recv:
            if (!handler && rt.task_rt_ok(self) && idx_ok(rt.mbfs, op.a)) {
                auto& buf = rt.task_rt[static_cast<std::size_t>(self)].rcv_buf;
                tk.tk_rcv_mbf(rt.mbfs[static_cast<std::size_t>(op.a)], buf.data(),
                              tmo(op.b));
            }
            return;
        case OpKind::mpf_get:
            if (!handler && rt.task_rt_ok(self) && idx_ok(rt.mpfs, op.a)) {
                void* blk = nullptr;
                if (tk.tk_get_mpf(rt.mpfs[static_cast<std::size_t>(op.a)], &blk,
                                  tmo(op.b)) == E_OK) {
                    rt.task_rt[static_cast<std::size_t>(self)].mpf_held.emplace_back(
                        static_cast<std::size_t>(op.a), blk);
                }
            }
            return;
        case OpKind::mpf_rel:
            if (!handler && rt.task_rt_ok(self) && idx_ok(rt.mpfs, op.a)) {
                auto& held = rt.task_rt[static_cast<std::size_t>(self)].mpf_held;
                auto it = std::find_if(held.begin(), held.end(), [&](const auto& h) {
                    return h.first == static_cast<std::size_t>(op.a);
                });
                if (it != held.end()) {
                    tk.tk_rel_mpf(rt.mpfs[it->first], it->second);
                    held.erase(it);
                }
            }
            return;
        case OpKind::mpl_get:
            if (!handler && rt.task_rt_ok(self) && idx_ok(rt.mpls, op.a)) {
                void* blk = nullptr;
                if (tk.tk_get_mpl(rt.mpls[static_cast<std::size_t>(op.a)],
                                  std::clamp(op.b, 1, 4096), &blk,
                                  tmo(op.c)) == E_OK) {
                    rt.task_rt[static_cast<std::size_t>(self)].mpl_held.emplace_back(
                        static_cast<std::size_t>(op.a), blk);
                }
            }
            return;
        case OpKind::mpl_rel:
            if (!handler && rt.task_rt_ok(self) && idx_ok(rt.mpls, op.a)) {
                auto& held = rt.task_rt[static_cast<std::size_t>(self)].mpl_held;
                auto it = std::find_if(held.begin(), held.end(), [&](const auto& h) {
                    return h.first == static_cast<std::size_t>(op.a);
                });
                if (it != held.end()) {
                    tk.tk_rel_mpl(rt.mpls[it->first], it->second);
                    held.erase(it);
                }
            }
            return;
        case OpKind::cyc_start:
            if (idx_ok(rt.cycs, op.a)) {
                tk.tk_sta_cyc(rt.cycs[static_cast<std::size_t>(op.a)]);
            }
            return;
        case OpKind::cyc_stop:
            if (idx_ok(rt.cycs, op.a)) {
                tk.tk_stp_cyc(rt.cycs[static_cast<std::size_t>(op.a)]);
            }
            return;
        case OpKind::alm_start:
            if (idx_ok(rt.alms, op.a)) {
                tk.tk_sta_alm(rt.alms[static_cast<std::size_t>(op.a)],
                              static_cast<RELTIM>(std::clamp(op.b, 1, 200)));
            }
            return;
        case OpKind::alm_stop:
            if (idx_ok(rt.alms, op.a)) {
                tk.tk_stp_alm(rt.alms[static_cast<std::size_t>(op.a)]);
            }
            return;
        case OpKind::raise_int:
            if (idx_ok(rt.intvecs, op.a)) {
                tk.trigger_interrupt(rt.intvecs[static_cast<std::size_t>(op.a)]);
            }
            return;
        case OpKind::dsp_block: {
            // µ-ITRON critical section: dispatch disabled around a burst
            // of work (E_CTX from handlers, harmlessly).
            if (tk.tk_dis_dsp() == E_OK) {
                tk.sim().SIM_WaitUnits(
                    static_cast<std::uint64_t>(std::clamp(op.a, 1, 500)), ctx);
                tk.tk_ena_dsp();
            }
            return;
        }
        case OpKind::ras_tex:
            if (rt.task_idx_ok(op.a)) {
                tk.tk_ras_tex(rt.tasks[static_cast<std::size_t>(op.a)],
                              static_cast<UINT>(op.b == 0 ? 1 : op.b));
            }
            return;
        case OpKind::ref_poll: {
            switch (std::clamp(op.a, 0, 7)) {
                case 0: {
                    T_RSYS r;
                    tk.tk_ref_sys(&r);
                    return;
                }
                case 1: {
                    if (!rt.tasks.empty()) {
                        T_RTSK r;
                        tk.tk_ref_tsk(rt.tasks.front(), &r);
                    }
                    return;
                }
                case 2: {
                    if (!rt.sems.empty()) {
                        T_RSEM r;
                        tk.tk_ref_sem(rt.sems.front(), &r);
                    }
                    return;
                }
                case 3: {
                    if (!rt.flgs.empty()) {
                        T_RFLG r;
                        tk.tk_ref_flg(rt.flgs.front(), &r);
                    }
                    return;
                }
                case 4: {
                    if (!rt.mtxs.empty()) {
                        T_RMTX r;
                        tk.tk_ref_mtx(rt.mtxs.front(), &r);
                    }
                    return;
                }
                case 5: {
                    if (!rt.mbfs.empty()) {
                        T_RMBF r;
                        tk.tk_ref_mbf(rt.mbfs.front(), &r);
                    }
                    return;
                }
                case 6: {
                    SYSTIM t = 0;
                    tk.tk_get_tim(&t);
                    tk.tk_get_otm(&t);
                    return;
                }
                default: {
                    T_RVER r;
                    tk.tk_ref_ver(&r);
                    return;
                }
            }
        }
    }
}

void run_program(const std::shared_ptr<Runtime>& rt, int self,
                 const std::vector<FuzzOp>& ops, bool handler) {
    for (const FuzzOp& op : ops) {
        // Ops execute from a copy so a before_op rewrite (argument
        // corruption) never leaks into later iterations of the program.
        FuzzOp cur = op;
        if (rt->hooks.before_op) {
            rt->hooks.before_op(rt->op_index, cur, handler);
        }
        ++rt->op_index;
        exec_op(*rt, self, cur, handler);
    }
}

}  // namespace rtk::harness::fuzz
