// The op-program interpreter: executes corpus::Program sequences (the
// fuzzer's FuzzOp alias) against a live kernel. One Runtime per
// simulation holds the ID tables and workload-side state (mailbox node
// pools, message-buffer payloads, held pool blocks); exec_op maps each
// op onto the corresponding service call with every operand clamped or
// index-guarded, so any program is safe to run against any object
// population. Shared by the fuzzer (fuzz.cpp) and the corpus bridge
// (corpus_bridge.cpp), which must interpret identically or corpus
// fingerprints and fuzz repros diverge.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "harness/fuzz_spec.hpp"
#include "tkernel/tkernel.hpp"

namespace rtk::harness::fuzz {

/// Per-op interception of the spec interpreter. `before_op` runs before
/// every op executes -- `index` is the 0-based global op-execution count
/// across all tasks and handlers of the run, `op` may be rewritten in
/// place (the spec itself is never mutated). This is how the fault
/// engine attributes injections to service calls and corrupts call
/// arguments deterministically.
struct WorkloadHooks {
    std::function<void(std::uint64_t index, FuzzOp& op, bool handler)> before_op;
};

/// Per-simulation interpreter state. Created fresh by the workload of
/// each run so identical specs replay identically. `spec` is only read
/// by the fuzzer's entry closures; corpus-driven runs leave it null.
struct Runtime {
    tkernel::TKernel* tk = nullptr;
    std::shared_ptr<const FuzzSpec> spec;
    WorkloadHooks hooks;
    std::uint64_t op_index = 0;  ///< global op-execution counter

    std::vector<tkernel::ID> tasks, sems, flgs, mtxs, mbxs, mbfs, mpfs, mpls,
        cycs, alms;
    std::vector<tkernel::UINT> intvecs;

    struct MbxPool {
        std::vector<std::unique_ptr<tkernel::T_MSG_PRI>> nodes;
        std::vector<tkernel::T_MSG_PRI*> free;
    };
    std::vector<MbxPool> mbx_pools;

    struct TaskRt {
        std::vector<std::pair<std::size_t, void*>> mpf_held;
        std::vector<std::pair<std::size_t, void*>> mpl_held;
        std::vector<std::uint8_t> snd_buf;
        std::vector<std::uint8_t> rcv_buf;
    };
    std::vector<TaskRt> task_rt;

    bool task_idx_ok(std::int32_t i) const {
        return i >= 0 && static_cast<std::size_t>(i) < tasks.size();
    }
    /// True when `self` has workload-side buffers (mbf/mpf/mpl ops).
    bool task_rt_ok(int self) const {
        return self >= 0 && static_cast<std::size_t>(self) < task_rt.size();
    }
};

/// Execute one op. `self` is the invoking task's spec index, -1 in
/// handler context. Handlers never block: their timeouts collapse to
/// TMO_POL and task-state ops (held blocks, message nodes) are skipped.
void exec_op(Runtime& rt, int self, const FuzzOp& op, bool handler);

/// Interpret `ops` in order, routing each through hooks.before_op.
void run_program(const std::shared_ptr<Runtime>& rt, int self,
                 const std::vector<FuzzOp>& ops, bool handler);

}  // namespace rtk::harness::fuzz
