#include "harness/campaign_engine.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include <sys/wait.h>
#include <unistd.h>

#include "harness/campaign_store.hpp"
#include "sysc/fsio.hpp"

namespace rtk::harness::campaign {

namespace fs = std::filesystem;

namespace {

bool fail(std::string* error, const std::string& what) {
    if (error != nullptr) {
        *error = what;
    }
    return false;
}

/// Parse a runlist: one decimal job id per line (whitespace tolerated,
/// junk lines skipped -- the file is written atomically so junk means
/// someone edited it by hand).
std::vector<std::uint64_t> read_runlist(const std::string& path) {
    std::vector<std::uint64_t> ids;
    std::ifstream in(path, std::ios::binary);
    std::string line;
    while (std::getline(in, line)) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(line.c_str(), &end, 10);
        if (end != line.c_str()) {
            ids.push_back(v);
        }
    }
    return ids;
}

/// Next unused round index: one past the highest round_NNN.list present.
unsigned next_round_index(const std::string& dir) {
    unsigned next = 0;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        unsigned round = 0;
        if (std::sscanf(name.c_str(), "round_%u.list", &round) == 1 &&
            name.size() == std::string("round_000.list").size()) {
            next = std::max(next, round + 1);
        }
    }
    return next;
}

unsigned default_shards() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 2 : hw;
}

}  // namespace

// ---- shard worker -----------------------------------------------------------

int run_shard(const std::string& dir, unsigned shard_id,
              const std::string& runlist) {
    Manifest m;
    std::string error;
    if (!load_manifest(dir, m, &error)) {
        std::fprintf(stderr, "shard %u: %s\n", shard_id, error.c_str());
        return 2;
    }
    std::vector<Job> jobs;
    if (!load_jobs(dir, jobs, &error)) {
        std::fprintf(stderr, "shard %u: %s\n", shard_id, error.c_str());
        return 2;
    }
    const std::vector<std::uint64_t> ids = read_runlist(runlist);
    if (ids.empty()) {
        return 0;  // nothing to do is a clean exit
    }

    // The store file is derived from the runlist name so every (round,
    // shard) pair gets a fresh file: resuming never appends to a file a
    // crash may have torn.
    const std::string stem = fs::path(runlist).stem().string();
    const std::string store_file =
        shards_dir(dir) + "/" + stem + "_s" + std::to_string(shard_id) +
        ".jsonl";
    JsonlAppender store;
    if (!store.open(store_file, m.flush_every, &error)) {
        std::fprintf(stderr, "shard %u: %s\n", shard_id, error.c_str());
        return 2;
    }
    ClaimQueue queue;
    if (!queue.open(cursor_path(runlist), &error)) {
        std::fprintf(stderr, "shard %u: %s\n", shard_id, error.c_str());
        return 2;
    }

    BaselineCache cache;
    std::uint64_t begin = 0, end = 0;
    while (queue.claim(ids.size(), m.claim_batch, begin, end)) {
        for (std::uint64_t k = begin; k < end; ++k) {
            const std::uint64_t id = ids[k];
            if (id >= jobs.size()) {
                std::fprintf(stderr, "shard %u: runlist id %llu out of range\n",
                             shard_id,
                             static_cast<unsigned long long>(id));
                continue;
            }
            store.append(run_job(m, jobs[id], cache).dump(-1));
        }
    }
    return store.close() ? 0 : 2;
}

// ---- round bookkeeping ------------------------------------------------------

bool prepare_round(const std::string& dir, Round& out, std::string* error) {
    std::vector<Job> jobs;
    if (!load_jobs(dir, jobs, error)) {
        return false;
    }
    StoreScan scan;
    if (!scan_stores(dir, scan, error)) {
        return false;
    }
    Round round;
    for (const Job& job : jobs) {
        if (scan.records.find(job.id) == scan.records.end()) {
            round.pending.push_back(job.id);
        }
    }
    if (round.pending.empty()) {
        out = std::move(round);
        return true;
    }
    round.index = next_round_index(dir);
    round.runlist = runlist_path(dir, round.index);
    std::string lines;
    for (const std::uint64_t id : round.pending) {
        lines += std::to_string(id);
        lines += '\n';
    }
    // Durable: after a power cut mid-round, resume must see either this
    // complete runlist or none -- a partial one would silently shrink
    // the round.
    if (!sysc::write_file_atomic(round.runlist, lines, error,
                                 /*durable=*/true)) {
        return false;
    }
    if (!sysc::write_file_atomic(cursor_path(round.runlist), "0\n", error)) {
        return false;
    }
    out = std::move(round);
    return true;
}

long spawn_shard(const std::string& exe, const std::string& dir,
                 unsigned shard_id, const std::string& runlist,
                 std::string* error) {
    const pid_t pid = ::fork();
    if (pid < 0) {
        fail(error, std::string("fork: ") + std::strerror(errno));
        return -1;
    }
    if (pid == 0) {
        const std::string id = std::to_string(shard_id);
        ::execl(exe.c_str(), exe.c_str(), "shard", dir.c_str(), "--id",
                id.c_str(), "--runlist", runlist.c_str(),
                static_cast<char*>(nullptr));
        std::fprintf(stderr, "exec %s: %s\n", exe.c_str(),
                     std::strerror(errno));
        ::_exit(127);
    }
    return pid;
}

bool wait_shard(long pid, std::string* status) {
    int st = 0;
    while (::waitpid(static_cast<pid_t>(pid), &st, 0) < 0) {
        if (errno != EINTR) {
            if (status != nullptr) {
                *status = std::string("waitpid: ") + std::strerror(errno);
            }
            return false;
        }
    }
    if (WIFEXITED(st) && WEXITSTATUS(st) == 0) {
        return true;
    }
    if (status != nullptr) {
        *status = WIFSIGNALED(st)
                      ? "signal " + std::to_string(WTERMSIG(st))
                      : "exit " + std::to_string(WIFEXITED(st)
                                                     ? WEXITSTATUS(st)
                                                     : st);
    }
    return false;
}

std::string self_executable() {
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0) {
        return std::string();
    }
    buf[n] = '\0';
    return std::string(buf);
}

// ---- engine -----------------------------------------------------------------

EngineResult run_campaign(const std::string& dir, const EngineOptions& opts) {
    EngineResult res;
    std::vector<Job> jobs;
    if (!load_jobs(dir, jobs, &res.error)) {
        return res;
    }
    res.total_jobs = jobs.size();

    std::string exe = opts.worker_exe;
    if (!opts.in_process && exe.empty()) {
        exe = self_executable();
        if (exe.empty()) {
            res.error = "cannot resolve /proc/self/exe; pass worker_exe or "
                        "use in_process";
            return res;
        }
    }
    const unsigned shards = opts.shards == 0 ? default_shards() : opts.shards;

    std::size_t last_pending = jobs.size() + 1;
    for (std::size_t r = 0; r < opts.max_rounds; ++r) {
        Round round;
        if (!prepare_round(dir, round, &res.error)) {
            return res;
        }
        res.done_jobs = res.total_jobs - round.pending.size();
        if (round.pending.empty()) {
            res.complete = true;
            return res;
        }
        if (round.pending.size() >= last_pending) {
            // A full round ran and not one job finished: the jobs
            // themselves must be failing before they reach the store.
            res.error = "round made no progress (" +
                        std::to_string(round.pending.size()) +
                        " jobs still pending)";
            return res;
        }
        last_pending = round.pending.size();
        ++res.rounds;

        const unsigned workers = static_cast<unsigned>(
            std::min<std::size_t>(shards, round.pending.size()));
        if (opts.verbose) {
            std::fprintf(stderr,
                         "campaign: round %u, %zu pending, %u shard(s)\n",
                         round.index, round.pending.size(), workers);
        }
        if (opts.in_process) {
            for (unsigned s = 0; s < workers; ++s) {
                if (run_shard(dir, s, round.runlist) != 0) {
                    ++res.shard_failures;
                }
            }
        } else {
            std::vector<long> pids;
            pids.reserve(workers);
            for (unsigned s = 0; s < workers; ++s) {
                std::string spawn_error;
                const long pid =
                    spawn_shard(exe, dir, s, round.runlist, &spawn_error);
                if (pid < 0) {
                    ++res.shard_failures;
                    if (opts.verbose) {
                        std::fprintf(stderr, "campaign: %s\n",
                                     spawn_error.c_str());
                    }
                } else {
                    pids.push_back(pid);
                }
            }
            for (const long pid : pids) {
                std::string status;
                if (!wait_shard(pid, &status)) {
                    ++res.shard_failures;
                    if (opts.verbose) {
                        std::fprintf(stderr, "campaign: shard died (%s)\n",
                                     status.c_str());
                    }
                }
            }
        }
    }

    // Out of rounds: report how far we got.
    Round final_round;
    if (prepare_round(dir, final_round, &res.error)) {
        res.done_jobs = res.total_jobs - final_round.pending.size();
        res.complete = final_round.pending.empty();
        if (!res.complete && res.error.empty()) {
            res.error = "job budget exhausted after " +
                        std::to_string(opts.max_rounds) + " rounds";
        }
    }
    return res;
}

// ---- status -----------------------------------------------------------------

CampaignStatus query_status(const std::string& dir) {
    CampaignStatus st;
    if (!load_manifest(dir, st.manifest, &st.error)) {
        return st;
    }
    st.total_jobs = st.manifest.total_jobs();
    StoreScan scan;
    if (!scan_stores(dir, scan, &st.error)) {
        return st;
    }
    st.done_jobs = scan.records.size();
    st.store_files = scan.store_files;
    st.skipped_lines = scan.skipped_lines;
    st.duplicates = scan.duplicates;
    for (const auto& [id, rec] : scan.records) {
        if (rec.at("skipped").as_bool()) {
            ++st.tallies["skipped"];
        } else if (st.manifest.kind == Kind::fuzz) {
            ++st.tallies[rec.at("verdict").as_string()];
        } else {
            ++st.tallies[rec.at("outcome").as_string()];
        }
    }
    st.ok = true;
    return st;
}

}  // namespace rtk::harness::campaign
