// Compat spelling: the deterministic generator moved to corpus/rng.hpp
// so the corpus family generators and the fuzzer share one stream
// implementation. Fuzz code keeps saying fuzz::Rng.
#pragma once

#include "corpus/rng.hpp"

namespace rtk::harness::fuzz {

using Rng = rtk::corpus::Rng;

}  // namespace rtk::harness::fuzz
