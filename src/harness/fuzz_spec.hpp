// FuzzSpec -- the pure-data description of one randomized kernel
// scenario: kernel configuration, object population (tasks, semaphores,
// eventflags, mutexes, mailboxes, message buffers, memory pools, cyclic/
// alarm handlers, interrupt vectors) and one small op program per task
// and per handler. A FuzzSpec is everything the differential driver
// needs to reproduce a run:
//
//   seed  --generate-->  FuzzSpec  --build_scenario-->  ScenarioSpec
//
// generate() is deterministic and platform-independent (fuzz_rng.hpp),
// and to_json()/from_json() round-trip losslessly, so a repro file can
// pin either the seed alone or a minimized spec that no longer matches
// any seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/json.hpp"
#include "corpus/ops.hpp"

namespace rtk::harness::fuzz {

// The op data model lives in rtk::corpus (corpus/ops.hpp) so corpus
// scenario files and fuzz specs share one encoding and one
// interpreter; these aliases keep the historical fuzz:: spellings
// working.
using SpecTmo = corpus::SpecTmo;
using OpKind = corpus::OpKind;
using FuzzOp = corpus::Op;
using corpus::op_kind_from_string;
using corpus::to_string;

struct TaskSpec {
    std::int32_t pri = 1;
    bool tex = false;  ///< define a task-exception handler at creation
    std::vector<FuzzOp> ops;
};

struct SemSpec {
    std::int32_t init = 0;
    std::int32_t max = 1;
    bool tpri = false;
    bool cnt_order = false;  ///< TA_CNT instead of TA_FIRST
};

struct FlgSpec {
    std::uint32_t init = 0;
    bool tpri = false;
    bool wmul = true;
};

struct MtxSpec {
    /// 0 = TA_TFIFO, 1 = TA_TPRI, 2 = TA_INHERIT, 3 = TA_CEILING.
    std::int32_t proto = 0;
    std::int32_t ceil = 1;
};

struct MbxSpec {
    bool tpri = false;
    bool mpri = false;
    std::int32_t nodes = 4;  ///< size of the workload's T_MSG node pool
};

struct MbfSpec {
    std::int32_t bufsz = 64;
    std::int32_t maxmsz = 16;
    bool tpri = false;
};

struct MpfSpec {
    std::int32_t cnt = 2;
    std::int32_t blksz = 16;
    bool tpri = false;
};

struct MplSpec {
    std::int32_t size = 256;
    bool tpri = false;
};

struct CycSpec {
    std::int32_t period_ms = 5;
    std::int32_t phase_ms = 0;
    bool autostart = true;
    bool phs = false;
    std::vector<FuzzOp> ops;
};

struct AlmSpec {
    std::int32_t start_ms = 0;  ///< 0: created stopped
    std::vector<FuzzOp> ops;
};

struct IntSpec {
    std::int32_t pri = 1;
    std::vector<FuzzOp> ops;
};

struct FuzzSpec {
    std::uint64_t seed = 0;       ///< generator seed (0 for hand-built specs)
    std::uint32_t duration_ms = 50;
    std::uint32_t tick_us = 1000;
    bool round_robin = false;     ///< scheduler policy under test
    std::int32_t iter_units = 10; ///< per-iteration base compute units

    std::vector<TaskSpec> tasks;
    std::vector<SemSpec> sems;
    std::vector<FlgSpec> flgs;
    std::vector<MtxSpec> mtxs;
    std::vector<MbxSpec> mbxs;
    std::vector<MbfSpec> mbfs;
    std::vector<MpfSpec> mpfs;
    std::vector<MplSpec> mpls;
    std::vector<CycSpec> cycs;
    std::vector<AlmSpec> alms;
    std::vector<IntSpec> ints;

    /// Scenario name used in reports: "fuzz/<seed>/<policy>".
    std::string scenario_name() const;

    api::Json to_json() const;
    static bool from_json(const api::Json& j, FuzzSpec& out,
                          std::string* error = nullptr);

    bool operator==(const FuzzSpec& other) const {
        return to_json().dump(-1) == other.to_json().dump(-1);
    }
};

/// Tunable bounds of the generator; the defaults match the fuzz-smoke
/// budget (small scenarios, every object class reachable).
struct GenParams {
    std::int32_t min_tasks = 2;
    std::int32_t max_tasks = 5;
    std::int32_t max_ops_per_task = 10;
    std::int32_t max_sems = 2;
    std::int32_t max_flgs = 2;
    std::int32_t max_mtxs = 2;
    std::int32_t max_mbxs = 1;
    std::int32_t max_mbfs = 1;
    std::int32_t max_mpfs = 1;
    std::int32_t max_mpls = 1;
    std::int32_t max_cycs = 2;
    std::int32_t max_alms = 1;
    std::int32_t max_ints = 2;
    std::int32_t min_duration_ms = 40;
    std::int32_t max_duration_ms = 90;
    std::int32_t max_pri = 16;
};

/// Deterministically expand `seed` into a scenario (both policies share
/// the structure: the policy is chosen by one low bit of the seed unless
/// overridden by the caller afterwards).
FuzzSpec generate_spec(std::uint64_t seed, const GenParams& params = GenParams{});

}  // namespace rtk::harness::fuzz
