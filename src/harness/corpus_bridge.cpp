#include "harness/corpus_bridge.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "api/error.hpp"
#include "harness/simulation.hpp"
#include "sysc/report.hpp"
#include "tkernel/tkernel.hpp"

namespace rtk::harness {

using namespace rtk::tkernel;
using corpus::Program;
using corpus::ScenarioFile;
using fuzz::Runtime;
using sim::ExecContext;
using sysc::Time;

namespace {

/// Copy the structural graph and attach behaviour closures per the
/// scenario's bindings. The closures capture `file` (keeping the bound
/// programs alive for the run) and the per-run interpreter Runtime.
api::SystemSpec attach_behaviours(const std::shared_ptr<Runtime>& rt,
                                  const std::shared_ptr<const ScenarioFile>& file) {
    api::SystemSpec sys = file->system;

    const std::uint64_t iter = static_cast<std::uint64_t>(
        std::clamp(file->config.iter_units, 1, 1000));
    for (std::size_t i = 0; i < sys.tasks.size(); ++i) {
        api::TaskNode& node = sys.tasks[i];
        const int self = static_cast<int>(i);
        if (const Program* prog = file->task_program(node.def.name)) {
            node.def.entry = [rt, file, self, prog, iter](INT, void*) {
                for (;;) {
                    rt->tk->sim().SIM_WaitUnits(iter, ExecContext::task);
                    fuzz::run_program(rt, self, *prog, /*handler=*/false);
                }
            };
        } else {
            // Unbound: park forever (wakeup/rel_wai from other programs
            // still make the task observable to the scheduler).
            node.def.entry = [rt](INT, void*) {
                for (;;) {
                    rt->tk->tk_slp_tsk(TMO_FEVR);
                }
            };
        }
        if (node.tex.texhdr) {
            // Replace from_json's structural placeholder with the same
            // bounded handler the fuzzer installs.
            node.tex.texhdr = [rt](UINT) {
                rt->tk->sim().SIM_WaitUnits(5, ExecContext::service_call);
            };
        }
    }

    for (api::CycNode& node : sys.cyclics) {
        const Program* prog = nullptr;
        if (auto it = file->cyclic_bindings.find(node.def.name);
            it != file->cyclic_bindings.end()) {
            prog = file->find_program(it->second);
        }
        node.def.handler = [rt, file, prog](void*) {
            if (prog != nullptr) {
                fuzz::run_program(rt, -1, *prog, /*handler=*/true);
            }
        };
    }
    for (api::AlmNode& node : sys.alarms) {
        const Program* prog = nullptr;
        if (auto it = file->alarm_bindings.find(node.def.name);
            it != file->alarm_bindings.end()) {
            prog = file->find_program(it->second);
        }
        node.def.handler = [rt, file, prog](void*) {
            if (prog != nullptr) {
                fuzz::run_program(rt, -1, *prog, /*handler=*/true);
            }
        };
    }
    for (api::IntNode& node : sys.interrupts) {
        const Program* prog = nullptr;
        if (auto it = file->interrupt_bindings.find(node.intno);
            it != file->interrupt_bindings.end()) {
            prog = file->find_program(it->second);
        }
        node.hdr = [rt, file, prog](void*) {
            if (prog != nullptr) {
                fuzz::run_program(rt, -1, *prog, /*handler=*/true);
            }
        };
    }
    return sys;
}

/// The user main: size the workload-side interpreter state, instantiate
/// the graph, then fill the ID tables. Autostarted tasks can preempt the
/// init task mid-instantiation; exec_op's index guards turn ops against
/// still-empty tables into deterministic no-ops.
void setup_corpus_workload(const std::shared_ptr<Runtime>& rt,
                           const std::shared_ptr<const ScenarioFile>& file) {
    TKernel& tk = *rt->tk;

    const int nodes = std::clamp(file->config.mbx_nodes, 1, 64);
    for (std::size_t i = 0; i < file->system.mailboxes.size(); ++i) {
        Runtime::MbxPool pool;
        for (int n = 0; n < nodes; ++n) {
            pool.nodes.push_back(std::make_unique<T_MSG_PRI>());
            pool.free.push_back(pool.nodes.back().get());
        }
        rt->mbx_pools.push_back(std::move(pool));
    }
    INT max_msz = 1;
    for (const api::MbfNode& m : file->system.msgbufs) {
        max_msz = std::max(max_msz, std::clamp(m.def.max_message, 1, 1 << 12));
    }
    rt->task_rt.resize(file->system.tasks.size());
    for (std::size_t i = 0; i < rt->task_rt.size(); ++i) {
        auto& trt = rt->task_rt[i];
        trt.snd_buf.assign(static_cast<std::size_t>(max_msz), 0);
        for (std::size_t b = 0; b < trt.snd_buf.size(); ++b) {
            trt.snd_buf[b] = static_cast<std::uint8_t>(0x40u + i + b);
        }
        trt.rcv_buf.assign(static_cast<std::size_t>(max_msz), 0);
    }

    api::System sys(tk);
    auto handles = api::instantiate(sys, attach_behaviours(rt, file));
    if (!handles.ok()) {
        sysc::report(sysc::Severity::fatal, "corpus",
                     std::string("scenario '") + file->name +
                         "' instantiation failed: " +
                         api::er_describe(handles.er()));
    }
    handles->release_all();
    for (const auto& h : handles->tasks) rt->tasks.push_back(h.id());
    for (const auto& h : handles->semaphores) rt->sems.push_back(h.id());
    for (const auto& h : handles->eventflags) rt->flgs.push_back(h.id());
    for (const auto& h : handles->mutexes) rt->mtxs.push_back(h.id());
    for (const auto& h : handles->mailboxes) rt->mbxs.push_back(h.id());
    for (const auto& h : handles->msgbufs) rt->mbfs.push_back(h.id());
    for (const auto& h : handles->fixed_pools) rt->mpfs.push_back(h.id());
    for (const auto& h : handles->var_pools) rt->mpls.push_back(h.id());
    for (const auto& h : handles->cyclics) rt->cycs.push_back(h.id());
    for (const auto& h : handles->alarms) rt->alms.push_back(h.id());
    rt->intvecs = handles->interrupts;
}

}  // namespace

ScenarioSpec scenario_from_corpus(const ScenarioFile& file,
                                  fuzz::WorkloadHooks hooks) {
    auto file_ptr = std::make_shared<const ScenarioFile>(file);
    auto hooks_ptr = std::make_shared<const fuzz::WorkloadHooks>(std::move(hooks));

    ScenarioSpec sc;
    sc.name = file.name;
    sc.seed = file.seed;
    sc.duration = Time::us(static_cast<std::uint64_t>(file.duration_ms) * 1000);
    sc.config.tick = Time::us(file.config.tick_us);
    sc.config.policy = file.config.round_robin
                           ? TKernel::SchedPolicy::round_robin
                           : TKernel::SchedPolicy::priority_preemptive;
    sc.delta_budget = file.config.delta_budget != 0
                          ? file.config.delta_budget
                          : corpus_default_delta_budget;
    sc.workload = [file_ptr, hooks_ptr](Simulation& sim, const ScenarioSpec&) {
        auto rt = std::make_shared<Runtime>();
        rt->tk = &sim.os();
        rt->hooks = *hooks_ptr;
        sim.retain(rt);
        sim.set_user_main([rt, file_ptr] { setup_corpus_workload(rt, file_ptr); });
    };
    return sc;
}

CorpusRunReport run_corpus_scenario(const ScenarioFile& file) {
    ScenarioSpec sc = scenario_from_corpus(file);
    sc.trace.enabled = true;  // checks read trace::Metrics
    CorpusRunReport report;
    report.result = run_scenario(sc);
    report.checks = corpus::evaluate_checks(file, report.result.metrics);
    report.checks_passed = corpus::all_passed(report.checks);
    return report;
}

fuzz::FuzzSpec corpus_to_fuzz_spec(const ScenarioFile& file) {
    fuzz::FuzzSpec spec;
    spec.seed = file.seed;
    spec.duration_ms = file.duration_ms;
    spec.tick_us = file.config.tick_us;
    spec.round_robin = file.config.round_robin;
    spec.iter_units = file.config.iter_units;

    for (const api::TaskNode& n : file.system.tasks) {
        fuzz::TaskSpec t;
        t.pri = n.def.priority;
        t.tex = static_cast<bool>(n.tex.texhdr);
        if (const Program* prog = file.task_program(n.def.name)) {
            t.ops = *prog;
        }
        spec.tasks.push_back(std::move(t));
    }
    for (const api::SemNode& n : file.system.semaphores) {
        spec.sems.push_back({n.def.initial, n.def.max, n.def.priority_queue,
                             n.def.count_order});
    }
    for (const api::FlgNode& n : file.system.eventflags) {
        spec.flgs.push_back(
            {n.def.initial, n.def.priority_queue, n.def.multi_waiter});
    }
    for (const api::MtxNode& n : file.system.mutexes) {
        spec.mtxs.push_back(
            {static_cast<std::int32_t>(n.def.protocol), n.def.ceiling});
    }
    for (const api::MbxNode& n : file.system.mailboxes) {
        spec.mbxs.push_back({n.def.priority_queue, n.def.priority_messages,
                             std::clamp(file.config.mbx_nodes, 1, 64)});
    }
    for (const api::MbfNode& n : file.system.msgbufs) {
        spec.mbfs.push_back(
            {n.def.buffer_size, n.def.max_message, n.def.priority_queue});
    }
    for (const api::MpfNode& n : file.system.fixed_pools) {
        spec.mpfs.push_back(
            {n.def.blocks, n.def.block_size, n.def.priority_queue});
    }
    for (const api::MplNode& n : file.system.var_pools) {
        spec.mpls.push_back({n.def.size, n.def.priority_queue});
    }
    for (const api::CycNode& n : file.system.cyclics) {
        fuzz::CycSpec c;
        c.period_ms = static_cast<std::int32_t>(n.def.period_ms);
        c.phase_ms = static_cast<std::int32_t>(n.def.phase_ms);
        c.autostart = n.def.autostart;
        c.phs = n.def.honor_phase;
        if (auto it = file.cyclic_bindings.find(n.def.name);
            it != file.cyclic_bindings.end()) {
            if (const Program* prog = file.find_program(it->second)) {
                c.ops = *prog;
            }
        }
        spec.cycs.push_back(std::move(c));
    }
    for (const api::AlmNode& n : file.system.alarms) {
        fuzz::AlmSpec a;
        a.start_ms = static_cast<std::int32_t>(n.start_after_ms);
        if (auto it = file.alarm_bindings.find(n.def.name);
            it != file.alarm_bindings.end()) {
            if (const Program* prog = file.find_program(it->second)) {
                a.ops = *prog;
            }
        }
        spec.alms.push_back(std::move(a));
    }
    for (const api::IntNode& n : file.system.interrupts) {
        fuzz::IntSpec v;
        v.pri = n.pri;
        if (auto it = file.interrupt_bindings.find(n.intno);
            it != file.interrupt_bindings.end()) {
            if (const Program* prog = file.find_program(it->second)) {
                v.ops = *prog;
            }
        }
        spec.ints.push_back(std::move(v));
    }
    return spec;
}

}  // namespace rtk::harness
