// rtk::harness::fuzz -- the property-based scenario fuzzer.
//
// Pipeline (one seed):
//
//   seed --generate_spec--> FuzzSpec --build_scenario--> ScenarioSpec
//        --run--> {serial run, parallel run} x InvariantOracle
//        --compare--> behaviour fingerprints must be bit-identical
//
// A failing seed (oracle violation, simulation error, or serial-vs-
// parallel fingerprint mismatch) is minimized by structural delta
// debugging and dumped as a self-contained repro JSON that replays
// byte-for-byte: the spec is embedded, so the repro stays valid even if
// the generator evolves. tests/fuzz/corpus/ pins replayed repros as
// regression tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/fuzz_interp.hpp"
#include "harness/fuzz_oracle.hpp"
#include "harness/fuzz_spec.hpp"
#include "harness/scenario.hpp"

namespace rtk::harness::fuzz {

/// Post-run oracle findings of one scenario execution (filled by the
/// check predicate installed by build_scenario()).
struct OracleReport {
    bool ran = false;
    std::uint64_t events = 0;
    std::uint64_t violation_count = 0;
    std::vector<std::string> violations;
};

struct BuiltScenario {
    ScenarioSpec scenario;
    /// Filled when the scenario's check predicate runs (end of run).
    std::shared_ptr<OracleReport> oracle;
};

/// Turn a spec into a runnable ScenarioSpec. The workload interprets the
/// spec's op programs; when `with_oracle` is set an InvariantOracle is
/// attached for the whole run and its findings land in `oracle`.
BuiltScenario build_scenario(const FuzzSpec& spec, bool with_oracle = true);

/// As above with interpreter hooks and an extra workload-time callback:
/// `attach` runs on the freshly built Simulation after the oracle is
/// installed (the fault engine registers its injector and trace
/// observers there, via sim.retain()).
BuiltScenario build_scenario(const FuzzSpec& spec, bool with_oracle,
                             WorkloadHooks hooks,
                             std::function<void(Simulation&)> attach);

/// Differential result of one spec: serial run vs. a run on a worker
/// thread pool, both under the oracle.
struct SpecVerdict {
    bool sim_error = false;
    std::string error;                     ///< first error (either leg)
    std::uint64_t violation_count = 0;     ///< both legs combined
    std::vector<std::string> violations;
    std::uint64_t serial_fingerprint = 0;
    std::uint64_t parallel_fingerprint = 0;
    bool mismatch = false;

    bool ok() const { return !sim_error && violation_count == 0 && !mismatch; }
    /// "invariant", "mismatch", "sim-error" or "ok".
    const char* kind() const;
    std::string detail() const;
};

/// Run one spec serially and once through a 2-worker ScenarioRunner,
/// oracle attached to both, and compare fingerprints.
SpecVerdict run_spec_differential(const FuzzSpec& spec);

/// Shrink `spec` while it keeps failing run_spec_differential(): drops
/// tasks, handlers, objects and ops (with index remapping) and halves
/// the duration. `budget` bounds the number of candidate executions.
FuzzSpec minimize_spec(const FuzzSpec& spec, int budget = 160);

// ---- repro files ------------------------------------------------------------

/// Self-contained repro document (spec embedded; see README).
std::string make_repro_json(const FuzzSpec& spec, const std::string& kind,
                            const std::string& detail, bool minimized);
/// Parse either a repro document or a bare spec object.
bool parse_repro_json(const std::string& text, FuzzSpec& out,
                      std::string* error = nullptr);

// ---- campaign ---------------------------------------------------------------

struct FuzzOptions {
    std::uint64_t base_seed = 1;
    std::size_t num_seeds = 100;
    /// Run every seed under both scheduler policies (doubles the
    /// scenario count).
    bool both_policies = true;
    /// Worker threads of the parallel leg (0 = min(hardware, 8)).
    unsigned parallel_threads = 0;
    bool minimize = true;
    /// When non-empty, write one repro JSON per failing seed here.
    std::string repro_dir;
    /// Re-run each failing (minimized) spec once serially under the
    /// trace::Recorder and write the .rtktrace beside its repro JSON.
    /// Needs repro_dir; off by default (failures are rare, the re-run
    /// is one extra simulation per failure).
    bool trace_failures = false;
    /// When non-empty, stream one JSONL record per classified spec into
    /// `<store_dir>/results.jsonl` (append-only, fsync'd in batches) --
    /// the same record schema the sharded campaign engine writes.
    std::string store_dir;
    GenParams params;
};

struct FuzzFailure {
    std::uint64_t seed = 0;
    std::string scenario;
    std::string kind;
    std::string detail;
    std::string repro_json;
    std::string repro_path;  ///< empty when repro_dir was not set
    std::string trace_path;  ///< empty unless FuzzOptions::trace_failures
};

struct FuzzReport {
    std::size_t scenarios = 0;  ///< specs executed (seeds x policies)
    std::size_t runs = 0;       ///< simulations executed (serial + parallel)
    std::uint64_t oracle_events = 0;
    std::size_t mismatches = 0;
    std::uint64_t violations = 0;
    std::size_t sim_errors = 0;
    std::vector<FuzzFailure> failures;
    double wall_seconds = 0.0;

    bool ok() const { return failures.empty(); }
    double scenarios_per_second() const {
        return wall_seconds > 0.0 ? static_cast<double>(scenarios) / wall_seconds
                                  : 0.0;
    }
    std::string to_json() const;
};

/// Run the campaign: generate num_seeds specs from base_seed, execute
/// each (both policies when requested) serially and through the parallel
/// ScenarioRunner, check every invariant, compare fingerprints, minimize
/// and dump repros for failures.
FuzzReport run_fuzz_campaign(const FuzzOptions& opts);

}  // namespace rtk::harness::fuzz
