// SerialMonitor -- a T-Monitor-style debug console on the BFM UART.
//
// The T-Engine platform the paper targets ships with T-Monitor, a small
// ROM monitor reachable over the serial line. This module reproduces that
// debugging path on top of the reproduced stack: a monitor task sleeps on
// the serial interrupt, assembles command lines from UART RX bytes, and
// answers over UART TX using the T-Kernel/DS reference functions.
//
// Commands:
//   help             command summary
//   ver              kernel identification (tk_ref_ver)
//   sys              system state (td_ref_sys)
//   tsk              task table (td_lst_tsk/td_ref_tsk)
//   obj              full kernel-object listing (Fig 8)
//   tim              system time / operating time
//   stat             SIM_API counters + CPU load
//   ref tsk <id>     one task in detail
#pragma once

#include <cstdint>
#include <string>

#include "api/builder.hpp"
#include "bfm/bfm8051.hpp"
#include "tkernel/kernel.hpp"

namespace rtk::app {

class SerialMonitor {
public:
    struct Config {
        tkernel::PRI task_priority = 3;  ///< console reacts promptly
        unsigned irq_line = bfm::InterruptController::line_serial;
        tkernel::PRI irq_priority = 1;
        /// Host-side echo of monitor output to stdout (demo convenience).
        bool echo_to_stdout = false;
    };

    SerialMonitor(tkernel::TKernel& tk, bfm::Bfm8051& bfm);
    SerialMonitor(tkernel::TKernel& tk, bfm::Bfm8051& bfm, Config cfg);

    /// Create & start the monitor task and hook the serial interrupt.
    /// Must run in task context (call from the user main).
    void setup();

    /// Testbench helper: type a command line (appends '\r').
    void type_line(const std::string& line);

    tkernel::ID task_id() const { return task_h_ != nullptr ? task_h_->id() : 0; }
    std::uint64_t commands_executed() const { return commands_; }
    std::uint64_t unknown_commands() const { return unknown_; }

    /// Everything the monitor printed to the UART so far (TX log).
    const std::string& output() const;

private:
    void task_body();
    void execute(const std::string& line);
    void print(const std::string& text);  ///< TX with flow control

    std::string cmd_help() const;
    std::string cmd_ver() const;
    std::string cmd_sys() const;
    std::string cmd_tsk() const;
    std::string cmd_tim() const;
    std::string cmd_stat() const;
    std::string cmd_ref_tsk(const std::string& arg) const;

    tkernel::TKernel& tk_;
    bfm::Bfm8051& bfm_;
    Config cfg_;
    // api facade + the monitor's objects (owned RAII; sys_ must outlive
    // h_ -- do not reorder). The typed handle pointers are the single
    // source of object identity.
    api::System sys_{tk_};
    api::SystemHandles h_;
    api::EventFlag* rx_flag_h_ = nullptr;
    api::Task* task_h_ = nullptr;
    std::string line_buf_;
    std::uint64_t commands_ = 0;
    std::uint64_t unknown_ = 0;
};

}  // namespace rtk::app
