// The video-game application of the paper's case study (§5.2, Fig 4):
// "we programmed a video game application that maps into four
// communicating tasks: {LCD:T1, Key pad:T2, SSD:T3, IDLE:T4} and two
// handlers {Cyclic:H1, Alarm:H2}".
//
// The game is a paddle-and-ball playfield on the 16x2 LCD: the cyclic
// handler H1 advances the ball every physics tick and posts a render
// message (allocated from a fixed memory pool) to a mailbox; T1 receives
// and draws frames through the BFM; the keypad ISR sets an event flag
// that wakes T2 to scan the matrix and move the paddle (under a mutex);
// T3 waits on a semaphore signalled per score change and updates the
// seven-segment display; the alarm handler H2 ends each round; T4 idles
// at the lowest priority. Together the tasks exercise every T-Kernel
// synchronisation object class.
#pragma once

#include <cstdint>

#include "api/builder.hpp"
#include "bfm/bfm8051.hpp"
#include "tkernel/kernel.hpp"

namespace rtk::app {

struct GameConfig {
    /// H1 period: the game physics tick AND the LCD render rate -- this
    /// is the "BFM access rate driving a GUI widget" knob of Table 2.
    tkernel::RELTIM physics_period_ms = 50;
    /// H2 one-shot round timer.
    tkernel::RELTIM round_time_ms = 2000;
    tkernel::PRI pri_keypad = 4;  ///< T2 (most urgent user input)
    tkernel::PRI pri_lcd = 5;     ///< T1
    tkernel::PRI pri_ssd = 6;     ///< T3
    tkernel::PRI pri_idle = 100;  ///< T4
    /// Annotated computation per rendered frame (work units, task ctx).
    std::uint64_t frame_compose_units = 60;
    /// Annotated computation per keypad scan.
    std::uint64_t input_units = 15;
    /// Annotated computation per score update.
    std::uint64_t score_units = 10;
    bool spawn_idle_task = true;
};

class VideoGame {
public:
    VideoGame(tkernel::TKernel& tk, bfm::Bfm8051& bfm, GameConfig cfg = GameConfig{});

    /// Standard wiring of kernel and BFM (paper Fig 5): RTC drives the
    /// system tick, interrupt controller delivers into the kernel's
    /// Interrupt Dispatch. Call before power_on().
    static void wire(tkernel::TKernel& tk, bfm::Bfm8051& bfm);

    /// Install setup() as the kernel's user main (runs in the init task).
    void install();

    /// Create & start all tasks, handlers and resources; must run in task
    /// context (usually via install()).
    void setup();

    // ---- game state / statistics ----
    unsigned score() const { return score_; }
    unsigned misses() const { return misses_; }
    unsigned rounds() const { return rounds_; }
    int ball_x() const { return ball_x_; }
    int paddle_x() const { return paddle_x_; }
    std::uint64_t frames_rendered() const { return frames_; }
    std::uint64_t frames_dropped() const { return dropped_; }
    std::uint64_t key_events() const { return key_events_; }

    // ---- object ids for the debugger / tests (derived from the handles) ----
    tkernel::ID lcd_task() const { return id_of(t1_h_); }
    tkernel::ID keypad_task() const { return id_of(t2_h_); }
    tkernel::ID ssd_task() const { return id_of(t3_h_); }
    tkernel::ID idle_task() const { return id_of(t4_h_); }
    tkernel::ID cyclic_handler() const { return id_of(h1_h_); }
    tkernel::ID alarm_handler() const { return id_of(h2_h_); }
    tkernel::ID render_mailbox() const { return id_of(mbx_h_); }
    tkernel::ID msg_pool() const { return id_of(mpf_h_); }
    tkernel::ID key_flag() const { return id_of(flg_h_); }
    tkernel::ID score_sem() const { return id_of(sem_h_); }
    tkernel::ID paddle_mutex() const { return id_of(mtx_h_); }

    static constexpr unsigned key_left = 0;   ///< any key in column 0
    static constexpr unsigned key_right = 3;  ///< any key in column 3
    static constexpr tkernel::UINT key_event_bit = 0x1;

private:
    struct RenderMsg : tkernel::T_MSG {
        int ball_x;
        int ball_row;
        int paddle_x;
        unsigned score;
        unsigned round;
    };

    void physics_tick();  ///< H1 body
    void round_over();    ///< H2 body
    void lcd_task_body();
    void keypad_task_body();
    void ssd_task_body();
    void idle_task_body();
    void draw_frame(const RenderMsg& m);

    tkernel::TKernel& tk_;
    bfm::Bfm8051& bfm_;
    GameConfig cfg_;

    // The api facade over tk_ and the game's object graph (owned RAII:
    // destroying the game tears its tasks and resources down). sys_ must
    // outlive h_ -- do not reorder.
    api::System sys_{tk_};
    api::SystemHandles h_;
    // Stable typed views into h_ (assigned once by setup()); the single
    // source of object identity -- the ID accessors above derive from
    // them.
    api::Mailbox* mbx_h_ = nullptr;
    api::FixedPool* mpf_h_ = nullptr;
    api::EventFlag* flg_h_ = nullptr;
    api::Semaphore* sem_h_ = nullptr;
    api::Mutex* mtx_h_ = nullptr;
    api::Cyclic* h1_h_ = nullptr;
    api::Alarm* h2_h_ = nullptr;
    api::Task* t1_h_ = nullptr;
    api::Task* t2_h_ = nullptr;
    api::Task* t3_h_ = nullptr;
    api::Task* t4_h_ = nullptr;

    static tkernel::ID id_of(const api::HandleBase* h) {
        return h != nullptr ? h->id() : 0;
    }

    // game state (updated at handler/task level; consistency across
    // SIM_Wait boundaries is guarded by mtx_ where tasks share it)
    int ball_x_ = 3;
    int ball_dir_ = 1;
    int ball_row_ = 0;
    int paddle_x_ = 8;
    unsigned score_ = 0;
    unsigned misses_ = 0;
    unsigned rounds_ = 0;
    bool round_over_flag_ = false;

    std::uint64_t frames_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t key_events_ = 0;
};

}  // namespace rtk::app
