#include "app/monitor.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sim/stats.hpp"
#include "tkds/tkds.hpp"

namespace rtk::app {

using namespace tkernel;
using sim::ExecContext;

namespace {
constexpr UINT rx_event_bit = 0x1;

std::string trim(const std::string& s) {
    const auto b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) {
        return {};
    }
    const auto e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}
}  // namespace

SerialMonitor::SerialMonitor(TKernel& tk, bfm::Bfm8051& bfm)
    : SerialMonitor(tk, bfm, Config{}) {}

SerialMonitor::SerialMonitor(TKernel& tk, bfm::Bfm8051& bfm, Config cfg)
    : tk_(tk), bfm_(bfm), cfg_(cfg) {}

void SerialMonitor::setup() {
    api::SystemBuilder b;
    b.eventflag("mon_rx");
    // Started explicitly below, after rx_flag_h_ is wired: the body
    // reads the handle pointer from its first instruction.
    b.task("T-Monitor").priority(cfg_.task_priority).body([this] { task_body(); });
    // The serial ISR: byte arrived (or TX done) -> wake the monitor
    // task. The line may already be claimed (e.g. re-setup): skip then.
    b.interrupt(cfg_.irq_line)
        .priority(cfg_.irq_priority)
        .if_free()
        .handler([this](void*) {
            if (bfm_.serial().rx_ready() && rx_flag_h_ != nullptr) {
                rx_flag_h_->set(rx_event_bit).expect("monitor rx flag");
            }
        });

    h_ = std::move(b.instantiate(sys_)).value();  // fatal on failure
    rx_flag_h_ = h_.find_eventflag("mon_rx");
    task_h_ = h_.find_task("T-Monitor");
    task_h_->start().expect("start T-Monitor");
    print("T-Monitor ready. Type 'help'.\r\n> ");
}

void SerialMonitor::type_line(const std::string& line) {
    for (char c : line) {
        bfm_.serial().feed_rx(static_cast<std::uint8_t>(c));
    }
    bfm_.serial().feed_rx('\r');
}

const std::string& SerialMonitor::output() const {
    return bfm_.serial().transmitted();
}

void SerialMonitor::task_body() {
    for (;;) {
        if (!rx_flag_h_->wait(rx_event_bit, TWF_ORW | TWF_CLR).ok()) {
            return;  // flag deleted: monitor shuts down
        }
        // Drain every byte that arrived (ISR coalescing).
        while (bfm_.serial_poll_ready()) {
            const char c = static_cast<char>(bfm_.serial_receive());
            tk_.sim().SIM_WaitUnits(2, ExecContext::task);  // per-byte handling
            if (c == '\r' || c == '\n') {
                const std::string line = trim(line_buf_);
                line_buf_.clear();
                if (!line.empty()) {
                    execute(line);
                }
                print("> ");
            } else {
                line_buf_.push_back(c);
            }
        }
    }
}

void SerialMonitor::print(const std::string& text) {
    if (cfg_.echo_to_stdout) {
        std::fputs(text.c_str(), stdout);
    }
    for (char c : text) {
        // Flow control: poll the transmitter, yielding a tick when busy.
        while (!bfm_.serial_send(static_cast<std::uint8_t>(c))) {
            tk_.tk_dly_tsk(1);
        }
        // Wait out the frame so back-to-back sends do not overrun. The
        // UART frame at 9600 baud is ~1.04 ms; one tick polls are fine.
        while ((bfm_.bus().read_xdata(bfm::Bfm8051::serial_base + 1) & 0x04) != 0) {
            tk_.tk_dly_tsk(1);
        }
    }
}

void SerialMonitor::execute(const std::string& line) {
    ++commands_;
    tk_.sim().SIM_WaitUnits(20, ExecContext::task);  // command dispatch cost
    std::istringstream in(line);
    std::string cmd, arg;
    in >> cmd >> arg;
    std::string reply;
    if (cmd == "help") {
        reply = cmd_help();
    } else if (cmd == "ver") {
        reply = cmd_ver();
    } else if (cmd == "sys") {
        reply = cmd_sys();
    } else if (cmd == "tsk") {
        reply = cmd_tsk();
    } else if (cmd == "obj") {
        reply = tkds::render_listing(tk_);
    } else if (cmd == "tim") {
        reply = cmd_tim();
    } else if (cmd == "stat") {
        reply = cmd_stat();
    } else if (cmd == "ref" && !arg.empty()) {
        std::string id_str;
        in >> id_str;
        reply = cmd_ref_tsk(id_str.empty() ? arg : id_str);
    } else {
        ++unknown_;
        --commands_;
        reply = "unknown command: " + cmd + "\r\n";
    }
    print(reply);
}

std::string SerialMonitor::cmd_help() const {
    return "commands: help ver sys tsk obj tim stat ref tsk <id>\r\n";
}

std::string SerialMonitor::cmd_ver() const {
    T_RVER v;
    tk_.tk_ref_ver(&v);
    return v.prid + " (" + v.spver + ")\r\n";
}

std::string SerialMonitor::cmd_sys() const {
    T_RSYS s;
    tk_.tk_ref_sys(&s);
    std::ostringstream out;
    out << "sysstat=" << s.sysstat << " runtsk=" << s.runtskid << "\r\n";
    return out.str();
}

std::string SerialMonitor::cmd_tsk() const {
    return tkds::render_task_table(tk_);
}

std::string SerialMonitor::cmd_tim() const {
    SYSTIM tim = 0, otm = 0;
    tk_.tk_get_tim(&tim);
    tk_.tk_get_otm(&otm);
    std::ostringstream out;
    out << "systim=" << tim << " ms, otm=" << otm << " ms\r\n";
    return out.str();
}

std::string SerialMonitor::cmd_stat() const {
    const sim::SystemStats s = sim::collect_stats(tk_.sim());
    std::ostringstream out;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "load=%.1f%% dispatches=%llu preempt=%llu irq=%llu idle=%s\r\n",
                  s.cpu_load * 100.0,
                  static_cast<unsigned long long>(s.dispatches),
                  static_cast<unsigned long long>(s.preemptions),
                  static_cast<unsigned long long>(s.interrupts),
                  s.idle_time.to_string().c_str());
    out << buf;
    return out.str();
}

std::string SerialMonitor::cmd_ref_tsk(const std::string& arg) const {
    const ID id = std::atoi(arg.c_str());
    tkds::TD_RTSK r;
    if (tkds::td_ref_tsk(tk_, id, &r) != E_OK) {
        return "no such task: " + arg + "\r\n";
    }
    std::ostringstream out;
    out << "task " << id << " '" << r.name << "' pri=" << r.base.tskpri << "("
        << r.base.tskbpri << ") stat=0x" << std::hex << r.base.tskstat << std::dec
        << " cet=" << r.cet.to_string() << " dispatches=" << r.dispatches
        << " cycles=" << r.cycles << "\r\n";
    return out.str();
}

}  // namespace rtk::app
