#include "app/videogame.hpp"

#include <new>
#include <string>

namespace rtk::app {

using namespace tkernel;
using sim::ExecContext;

VideoGame::VideoGame(TKernel& tk, bfm::Bfm8051& bfm, GameConfig cfg)
    : tk_(tk), bfm_(bfm), cfg_(cfg) {}

void VideoGame::wire(TKernel& tk, bfm::Bfm8051& bfm) {
    tk.attach_tick_source(bfm.rtc().tick_event());
    bfm.intc().set_sink([&tk](unsigned line, bool) {
        tk.trigger_interrupt(line);
    });
}

void VideoGame::install() {
    tk_.set_user_main([this] { setup(); });
}

void VideoGame::setup() {
    // The whole Fig 4 task set as one declarative graph; instantiation
    // creates and starts everything through the api facade.
    api::SystemBuilder b;
    b.mailbox("render_mbx");
    b.fixed_pool("msg_pool").blocks(4).block_size(sizeof(RenderMsg));
    b.eventflag("key_flg");
    b.semaphore("score_sem");
    b.mutex("paddle_mtx").inherit();

    // Not autostarted: the bodies reach their objects through the typed
    // handle pointers below, which exist only after instantiation -- the
    // explicit starts at the end close that window (and keep the
    // task-then-handler start order of a classic µ-ITRON user main).
    b.task("LCD:T1").priority(cfg_.pri_lcd).body([this] { lcd_task_body(); });
    b.task("Keypad:T2").priority(cfg_.pri_keypad).body(
        [this] { keypad_task_body(); });
    b.task("SSD:T3").priority(cfg_.pri_ssd).body([this] { ssd_task_body(); });
    if (cfg_.spawn_idle_task) {
        b.task("IDLE:T4").priority(cfg_.pri_idle).body(
            [this] { idle_task_body(); });
    }

    b.cyclic("Cyclic:H1").period(cfg_.physics_period_ms).autostart(false).handler(
        [this](void*) { physics_tick(); });
    b.alarm("Alarm:H2").handler([this](void*) { round_over(); });

    // Keypad interrupt: external /INT0 through the BFM intc.
    b.interrupt(bfm::InterruptController::line_ext0).priority(2).handler(
        [this](void*) {
            ++key_events_;
            if (flg_h_ != nullptr) {
                flg_h_->set(key_event_bit).expect("key event flag");
            }
        });

    h_ = std::move(b.instantiate(sys_)).value();  // fatal on failure

    mbx_h_ = h_.find_mailbox("render_mbx");
    mpf_h_ = h_.find_fixed_pool("msg_pool");
    flg_h_ = h_.find_eventflag("key_flg");
    sem_h_ = h_.find_semaphore("score_sem");
    mtx_h_ = h_.find_mutex("paddle_mtx");
    h1_h_ = h_.find_cyclic("Cyclic:H1");
    h2_h_ = h_.find_alarm("Alarm:H2");
    t1_h_ = h_.find_task("LCD:T1");
    t2_h_ = h_.find_task("Keypad:T2");
    t3_h_ = h_.find_task("SSD:T3");
    t4_h_ = cfg_.spawn_idle_task ? h_.find_task("IDLE:T4") : nullptr;

    // ---- start everything (handle pointers are wired now) ----
    t1_h_->start().expect("start LCD:T1");
    t2_h_->start().expect("start Keypad:T2");
    t3_h_->start().expect("start SSD:T3");
    if (t4_h_ != nullptr) {
        t4_h_->start().expect("start IDLE:T4");
    }
    h1_h_->start().expect("start Cyclic:H1");
    h2_h_->start(cfg_.round_time_ms).expect("start Alarm:H2");

    bfm_.lcd_clear();
    bfm_.ssd_show(0);
}

// ---- H1: game physics + frame production --------------------------------------

void VideoGame::physics_tick() {
    tk_.sim().SIM_WaitUnits(8, ExecContext::handler);  // physics computation
    if (round_over_flag_) {
        round_over_flag_ = false;
        ++rounds_;
        ball_x_ = 3;
        ball_row_ = 0;
        ball_dir_ = 1;
        h2_h_->start(cfg_.round_time_ms).expect("restart round alarm");
    }
    ball_x_ += ball_dir_;
    if (ball_x_ <= 0) {
        ball_x_ = 0;
        ball_dir_ = 1;
    } else if (ball_x_ >= 15) {
        ball_x_ = 15;
        ball_dir_ = -1;
    }
    ball_row_ ^= 1;
    if (ball_row_ == 1) {
        // Ball reaches the paddle row: hit or miss.
        if (ball_x_ >= paddle_x_ - 1 && ball_x_ <= paddle_x_ + 1) {
            ++score_;
            sem_h_->signal().expect("score semaphore");
        } else {
            ++misses_;
        }
    }
    // Produce a render message from the fixed pool (drop frame if the
    // pool is exhausted -- handlers must not block).
    const Expected<void*> blk = mpf_h_->get(TMO_POL);
    if (!blk.ok()) {
        ++dropped_;
        return;
    }
    auto* msg = new (*blk) RenderMsg{};
    msg->ball_x = ball_x_;
    msg->ball_row = ball_row_;
    msg->paddle_x = paddle_x_;
    msg->score = score_;
    msg->round = rounds_;
    mbx_h_->send(msg).expect("render mailbox");
}

// ---- H2: round timer -------------------------------------------------------------

void VideoGame::round_over() {
    tk_.sim().SIM_WaitUnits(4, ExecContext::handler);
    round_over_flag_ = true;
}

// ---- T1: LCD rendering -------------------------------------------------------------

void VideoGame::draw_frame(const RenderMsg& m) {
    std::string row0(16, ' ');
    std::string row1(16, ' ');
    auto& ball_row = (m.ball_row == 0) ? row0 : row1;
    ball_row[static_cast<std::size_t>(m.ball_x)] = '*';
    for (int x = m.paddle_x - 1; x <= m.paddle_x + 1; ++x) {
        if (x >= 0 && x < 16 && row1[static_cast<std::size_t>(x)] == ' ') {
            row1[static_cast<std::size_t>(x)] = '=';
        }
    }
    const std::string sc = std::to_string(m.score);
    row0.replace(16 - sc.size(), sc.size(), sc);
    bfm_.lcd_print(0, 0, row0);
    bfm_.lcd_print(1, 0, row1);
}

void VideoGame::lcd_task_body() {
    for (;;) {
        const Expected<T_MSG*> raw = mbx_h_->receive();
        if (!raw.ok()) {
            return;  // mailbox deleted: end task
        }
        auto* msg = static_cast<RenderMsg*>(*raw);
        // Compose the frame (annotated computation), read the paddle
        // position consistently, then draw through the BFM.
        mtx_h_->lock().expect("paddle mutex");
        const RenderMsg local = *msg;
        mtx_h_->unlock().expect("paddle mutex");
        tk_.sim().SIM_WaitUnits(cfg_.frame_compose_units, ExecContext::task);
        draw_frame(local);
        ++frames_;
        mpf_h_->put(msg).expect("render message pool");
    }
}

// ---- T2: keypad input ----------------------------------------------------------------

void VideoGame::keypad_task_body() {
    for (;;) {
        if (!flg_h_->wait(key_event_bit, TWF_ORW | TWF_CLR).ok()) {
            return;
        }
        tk_.sim().SIM_WaitUnits(cfg_.input_units, ExecContext::task);
        const int key = bfm_.keypad_scan();
        if (key < 0) {
            continue;
        }
        const unsigned col = static_cast<unsigned>(key) % 4;
        mtx_h_->lock().expect("paddle mutex");
        if (col == 0 && paddle_x_ > 1) {
            --paddle_x_;
        } else if (col == 3 && paddle_x_ < 14) {
            ++paddle_x_;
        }
        mtx_h_->unlock().expect("paddle mutex");
    }
}

// ---- T3: score display -----------------------------------------------------------------

void VideoGame::ssd_task_body() {
    for (;;) {
        if (!sem_h_->wait().ok()) {
            return;
        }
        tk_.sim().SIM_WaitUnits(cfg_.score_units, ExecContext::task);
        bfm_.ssd_show(score_);
    }
}

// ---- T4: idle ---------------------------------------------------------------------------

void VideoGame::idle_task_body() {
    // The classic µ-ITRON idle task: an endless low-priority loop. Its
    // consumed time/energy shows up in the Fig 7 distribution, exactly as
    // in the paper's screenshots.
    for (;;) {
        tk_.sim().SIM_WaitUnits(250, ExecContext::task);
    }
}

}  // namespace rtk::app
