#include "app/videogame.hpp"

#include <new>
#include <string>

namespace rtk::app {

using namespace tkernel;
using sim::ExecContext;

VideoGame::VideoGame(TKernel& tk, bfm::Bfm8051& bfm, GameConfig cfg)
    : tk_(tk), bfm_(bfm), cfg_(cfg) {}

void VideoGame::wire(TKernel& tk, bfm::Bfm8051& bfm) {
    tk.attach_tick_source(bfm.rtc().tick_event());
    bfm.intc().set_sink([&tk](unsigned line, bool) {
        tk.trigger_interrupt(line);
    });
}

void VideoGame::install() {
    tk_.set_user_main([this] { setup(); });
}

void VideoGame::setup() {
    // ---- resources ----
    T_CMBX cmbx;
    cmbx.name = "render_mbx";
    mbx_ = tk_.tk_cre_mbx(cmbx);

    T_CMPF cmpf;
    cmpf.name = "msg_pool";
    cmpf.mpfcnt = 4;
    cmpf.blfsz = sizeof(RenderMsg);
    mpf_ = tk_.tk_cre_mpf(cmpf);

    T_CFLG cflg;
    cflg.name = "key_flg";
    flg_ = tk_.tk_cre_flg(cflg);

    T_CSEM csem;
    csem.name = "score_sem";
    csem.isemcnt = 0;
    sem_ = tk_.tk_cre_sem(csem);

    T_CMTX cmtx;
    cmtx.name = "paddle_mtx";
    cmtx.mtxatr = TA_INHERIT;
    mtx_ = tk_.tk_cre_mtx(cmtx);

    // ---- tasks ----
    T_CTSK ct;
    ct.name = "LCD:T1";
    ct.itskpri = cfg_.pri_lcd;
    ct.task = [this](INT, void*) { lcd_task_body(); };
    t1_ = tk_.tk_cre_tsk(ct);

    ct.name = "Keypad:T2";
    ct.itskpri = cfg_.pri_keypad;
    ct.task = [this](INT, void*) { keypad_task_body(); };
    t2_ = tk_.tk_cre_tsk(ct);

    ct.name = "SSD:T3";
    ct.itskpri = cfg_.pri_ssd;
    ct.task = [this](INT, void*) { ssd_task_body(); };
    t3_ = tk_.tk_cre_tsk(ct);

    if (cfg_.spawn_idle_task) {
        ct.name = "IDLE:T4";
        ct.itskpri = cfg_.pri_idle;
        ct.task = [this](INT, void*) { idle_task_body(); };
        t4_ = tk_.tk_cre_tsk(ct);
    }

    // ---- handlers ----
    T_CCYC ccyc;
    ccyc.name = "Cyclic:H1";
    ccyc.cyctim = cfg_.physics_period_ms;
    ccyc.cychdr = [this](void*) { physics_tick(); };
    h1_ = tk_.tk_cre_cyc(ccyc);

    T_CALM calm;
    calm.name = "Alarm:H2";
    calm.almhdr = [this](void*) { round_over(); };
    h2_ = tk_.tk_cre_alm(calm);

    // ---- keypad interrupt (external /INT0 through the BFM intc) ----
    T_DINT dint;
    dint.intpri = 2;
    dint.inthdr = [this](void*) {
        ++key_events_;
        tk_.tk_set_flg(flg_, key_event_bit);
    };
    tk_.tk_def_int(bfm::InterruptController::line_ext0, dint);

    // ---- start everything ----
    tk_.tk_sta_tsk(t1_, 0);
    tk_.tk_sta_tsk(t2_, 0);
    tk_.tk_sta_tsk(t3_, 0);
    if (t4_ != 0) {
        tk_.tk_sta_tsk(t4_, 0);
    }
    tk_.tk_sta_cyc(h1_);
    tk_.tk_sta_alm(h2_, cfg_.round_time_ms);

    bfm_.lcd_clear();
    bfm_.ssd_show(0);
}

// ---- H1: game physics + frame production --------------------------------------

void VideoGame::physics_tick() {
    tk_.sim().SIM_WaitUnits(8, ExecContext::handler);  // physics computation
    if (round_over_flag_) {
        round_over_flag_ = false;
        ++rounds_;
        ball_x_ = 3;
        ball_row_ = 0;
        ball_dir_ = 1;
        tk_.tk_sta_alm(h2_, cfg_.round_time_ms);  // next round
    }
    ball_x_ += ball_dir_;
    if (ball_x_ <= 0) {
        ball_x_ = 0;
        ball_dir_ = 1;
    } else if (ball_x_ >= 15) {
        ball_x_ = 15;
        ball_dir_ = -1;
    }
    ball_row_ ^= 1;
    if (ball_row_ == 1) {
        // Ball reaches the paddle row: hit or miss.
        if (ball_x_ >= paddle_x_ - 1 && ball_x_ <= paddle_x_ + 1) {
            ++score_;
            tk_.tk_sig_sem(sem_, 1);
        } else {
            ++misses_;
        }
    }
    // Produce a render message from the fixed pool (drop frame if the
    // pool is exhausted -- handlers must not block).
    void* blk = nullptr;
    if (tk_.tk_get_mpf(mpf_, &blk, TMO_POL) != E_OK) {
        ++dropped_;
        return;
    }
    auto* msg = new (blk) RenderMsg{};
    msg->ball_x = ball_x_;
    msg->ball_row = ball_row_;
    msg->paddle_x = paddle_x_;
    msg->score = score_;
    msg->round = rounds_;
    tk_.tk_snd_mbx(mbx_, msg);
}

// ---- H2: round timer -------------------------------------------------------------

void VideoGame::round_over() {
    tk_.sim().SIM_WaitUnits(4, ExecContext::handler);
    round_over_flag_ = true;
}

// ---- T1: LCD rendering -------------------------------------------------------------

void VideoGame::draw_frame(const RenderMsg& m) {
    std::string row0(16, ' ');
    std::string row1(16, ' ');
    auto& ball_row = (m.ball_row == 0) ? row0 : row1;
    ball_row[static_cast<std::size_t>(m.ball_x)] = '*';
    for (int x = m.paddle_x - 1; x <= m.paddle_x + 1; ++x) {
        if (x >= 0 && x < 16 && row1[static_cast<std::size_t>(x)] == ' ') {
            row1[static_cast<std::size_t>(x)] = '=';
        }
    }
    const std::string sc = std::to_string(m.score);
    row0.replace(16 - sc.size(), sc.size(), sc);
    bfm_.lcd_print(0, 0, row0);
    bfm_.lcd_print(1, 0, row1);
}

void VideoGame::lcd_task_body() {
    for (;;) {
        T_MSG* raw = nullptr;
        if (tk_.tk_rcv_mbx(mbx_, &raw, TMO_FEVR) != E_OK) {
            return;  // mailbox deleted: end task
        }
        auto* msg = static_cast<RenderMsg*>(raw);
        // Compose the frame (annotated computation), read the paddle
        // position consistently, then draw through the BFM.
        tk_.tk_loc_mtx(mtx_, TMO_FEVR);
        const RenderMsg local = *msg;
        tk_.tk_unl_mtx(mtx_);
        tk_.sim().SIM_WaitUnits(cfg_.frame_compose_units, ExecContext::task);
        draw_frame(local);
        ++frames_;
        tk_.tk_rel_mpf(mpf_, msg);
    }
}

// ---- T2: keypad input ----------------------------------------------------------------

void VideoGame::keypad_task_body() {
    for (;;) {
        UINT ptn = 0;
        if (tk_.tk_wai_flg(flg_, key_event_bit, TWF_ORW | TWF_CLR, &ptn, TMO_FEVR) !=
            E_OK) {
            return;
        }
        tk_.sim().SIM_WaitUnits(cfg_.input_units, ExecContext::task);
        const int key = bfm_.keypad_scan();
        if (key < 0) {
            continue;
        }
        const unsigned col = static_cast<unsigned>(key) % 4;
        tk_.tk_loc_mtx(mtx_, TMO_FEVR);
        if (col == 0 && paddle_x_ > 1) {
            --paddle_x_;
        } else if (col == 3 && paddle_x_ < 14) {
            ++paddle_x_;
        }
        tk_.tk_unl_mtx(mtx_);
    }
}

// ---- T3: score display -----------------------------------------------------------------

void VideoGame::ssd_task_body() {
    for (;;) {
        if (tk_.tk_wai_sem(sem_, 1, TMO_FEVR) != E_OK) {
            return;
        }
        tk_.sim().SIM_WaitUnits(cfg_.score_units, ExecContext::task);
        bfm_.ssd_show(score_);
    }
}

// ---- T4: idle ---------------------------------------------------------------------------

void VideoGame::idle_task_body() {
    // The classic µ-ITRON idle task: an endless low-priority loop. Its
    // consumed time/energy shows up in the Fig 7 distribution, exactly as
    // in the paper's screenshots.
    for (;;) {
        tk_.sim().SIM_WaitUnits(250, ExecContext::task);
    }
}

}  // namespace rtk::app
