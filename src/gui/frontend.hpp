// Frontend -- the virtual-system-prototype window manager: owns no
// widgets but wires them to the co-simulation. Device widgets are
// refreshed by BFM accesses to their peripheral's address window (the
// Table 2 coupling); animate-mode widgets are refreshed periodically by
// a spawned process.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bfm/bus.hpp"
#include "gui/widget.hpp"

namespace rtk::gui {

class Frontend {
public:
    explicit Frontend(Mode mode) : mode_(mode) {}
    ~Frontend();

    Mode mode() const { return mode_; }

    /// Register a widget; it participates in render_all() and totals.
    void add(Widget& w) { widgets_.push_back(&w); }

    /// Refresh `w` whenever the bus touches [base, base+size) -- how the
    /// paper drives widgets from BFM accesses. Respects mode availability.
    void drive_from_bus(bfm::Bus8051& bus, std::uint16_t base, std::uint16_t size,
                        Widget& w);

    /// Animate-mode refresh of `w` every `period` of simulated time; the
    /// refresh process is spawned on `kernel`.
    void animate(sysc::Kernel& kernel, Widget& w, sysc::Time period);
    /// Ambient-context form: animates on the thread's current kernel.
    void animate(Widget& w, sysc::Time period);

    /// Text dump of every mode-available widget.
    std::string render_all() const;

    std::uint64_t total_refreshes() const;
    std::uint64_t total_host_work() const;

private:
    Mode mode_;
    std::vector<Widget*> widgets_;
    std::vector<sysc::Process*> animators_;
};

}  // namespace rtk::gui
