// Headless widget framework standing in for the paper's GUI layer.
//
// The paper wraps peripheral devices in "GUI widgets to give the look &
// feel of a virtual system prototype" and measures how GUI callback
// overhead degrades co-simulation speed (Table 2). Reproducing that
// overhead does not need pixels: each widget has a deterministic host-
// side cost model (busy work per refresh callback) and a text rendering.
// Refreshes are driven by BFM accesses, exactly like the paper's
// "different BFM access rates driving the GUI widgets".
#pragma once

#include <cstdint>
#include <string>

#include "sysc/time.hpp"

namespace rtk::gui {

/// Simulation-control mode of the frontend (paper §5: Gantt/waveform
/// displays are only usable in step mode; the energy distribution widget
/// animates at run time).
enum class Mode { step, animate };

/// Deterministic host-CPU cost: a xorshift busy loop the optimizer cannot
/// remove. One unit is one loop iteration (~1 ns on a modern host).
class HostCostModel {
public:
    explicit HostCostModel(std::uint64_t iterations) : iterations_(iterations) {}

    std::uint64_t iterations() const { return iterations_; }
    void set_iterations(std::uint64_t n) { iterations_ = n; }

    /// Burn the configured host work; returns the (meaningless) hash so
    /// the loop has an observable side effect.
    std::uint64_t burn() const;

private:
    std::uint64_t iterations_;
};

class Widget {
public:
    Widget(std::string name, std::uint64_t host_cost_iterations);
    virtual ~Widget() = default;

    Widget(const Widget&) = delete;
    Widget& operator=(const Widget&) = delete;

    const std::string& name() const { return name_; }

    /// Redraw callback: burns the host cost and re-renders. Refreshes
    /// closer together (in simulated time) than min_interval are skipped
    /// -- the paper's "adjustments of the host CPU clock that avoids GUI
    /// display hazards" maps to this frame limiter.
    void refresh();

    /// Is this widget usable in `mode`? (Gantt: step only; energy
    /// distribution: animate only; device widgets: both.)
    virtual bool available_in(Mode mode) const {
        (void)mode;
        return true;
    }

    /// Current text rendering of the widget.
    virtual std::string render() = 0;

    void set_min_interval(sysc::Time t) { min_interval_ = t; }
    HostCostModel& cost() { return cost_; }

    std::uint64_t refresh_count() const { return refreshes_; }
    std::uint64_t skipped_count() const { return skipped_; }
    std::uint64_t host_work_done() const { return host_work_; }
    const std::string& last_rendering() const { return last_render_; }

private:
    std::string name_;
    HostCostModel cost_;
    sysc::Time min_interval_{};
    sysc::Time last_refresh_{};
    bool ever_refreshed_ = false;
    std::uint64_t refreshes_ = 0;
    std::uint64_t skipped_ = 0;
    std::uint64_t host_work_ = 0;
    std::string last_render_;
};

}  // namespace rtk::gui
