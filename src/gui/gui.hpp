// Umbrella header for rtk::gui -- the headless virtual-prototype widgets.
#pragma once

#include "gui/frontend.hpp"
#include "gui/widget.hpp"
#include "gui/widgets.hpp"
