#include "gui/widgets.hpp"

#include <sstream>

#include "sysc/kernel.hpp"
#include "sysc/process.hpp"

namespace rtk::gui {

std::string LcdWidget::render() {
    std::ostringstream out;
    out << "+----------------+\n";
    out << "|" << lcd_.row_text(0) << "|\n";
    out << "|" << lcd_.row_text(1) << "|\n";
    out << "+----------------+";
    if (!lcd_.display_on()) {
        out << " (off)";
    }
    return out.str();
}

std::string SsdWidget::render() {
    return "[" + ssd_.text() + "]";
}

KeypadWidget::~KeypadWidget() {
    if (script_proc_ != nullptr && !script_proc_->terminated()) {
        script_proc_->kill();
    }
}

void KeypadWidget::play_script(std::vector<ScriptEvent> script) {
    play_script(sysc::Kernel::current(), std::move(script));
}

void KeypadWidget::play_script(sysc::Kernel& kernel, std::vector<ScriptEvent> script) {
    script_proc_ = &kernel.spawn(
        "gui.keypad.script", [this, script = std::move(script)] {
            sysc::Time last{};
            for (const auto& ev : script) {
                if (ev.at > last) {
                    sysc::wait(ev.at - last);
                    last = ev.at;
                }
                if (ev.press) {
                    pad_.press(ev.key);
                } else {
                    pad_.release(ev.key);
                }
                ++injected_;
                refresh();
            }
        });
}

std::string KeypadWidget::render() {
    std::ostringstream out;
    out << "keypad[";
    bool first = true;
    for (unsigned k = 0; k < 16; ++k) {
        if (pad_.is_pressed(k)) {
            out << (first ? "" : ",") << k;
            first = false;
        }
    }
    out << "]";
    return out.str();
}

std::string GanttWidget::render() {
    const sysc::Time now = sysc::Kernel::current().now();
    const sysc::Time from = now > window_ ? now - window_ : sysc::Time::zero();
    return api_.gantt().render_ascii(from, now, resolution_);
}

std::string EnergyDistributionWidget::render() {
    return sim::render_distribution(sim::collect_stats(api_), battery_);
}

}  // namespace rtk::gui
