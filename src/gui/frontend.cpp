#include "gui/frontend.hpp"

#include <cstdint>
#include <sstream>

#include "sysc/kernel.hpp"
#include "sysc/process.hpp"

namespace rtk::gui {

void Frontend::drive_from_bus(bfm::Bus8051& bus, std::uint16_t base,
                              std::uint16_t size, Widget& w) {
    if (!w.available_in(mode_)) {
        return;
    }
    Widget* wp = &w;
    bus.add_access_listener([wp, base, size](const bfm::Bus8051::AccessEvent& ev) {
        if (ev.addr >= base && ev.addr < static_cast<std::uint32_t>(base) + size) {
            wp->refresh();
        }
    });
}

Frontend::~Frontend() {
    for (sysc::Process* p : animators_) {
        p->kill();
    }
}

void Frontend::animate(Widget& w, sysc::Time period) {
    animate(sysc::Kernel::current(), w, period);
}

void Frontend::animate(sysc::Kernel& kernel, Widget& w, sysc::Time period) {
    if (!w.available_in(mode_)) {
        return;
    }
    Widget* wp = &w;
    animators_.push_back(
        &kernel.spawn("gui.animate." + w.name(), [wp, period] {
            for (;;) {
                sysc::wait(period);
                wp->refresh();
            }
        }));
}

std::string Frontend::render_all() const {
    std::ostringstream out;
    for (const Widget* w : widgets_) {
        if (!w->available_in(mode_)) {
            continue;
        }
        out << "--- " << w->name() << " ---\n" << w->last_rendering() << "\n";
    }
    return out.str();
}

std::uint64_t Frontend::total_refreshes() const {
    std::uint64_t n = 0;
    for (const Widget* w : widgets_) {
        n += w->refresh_count();
    }
    return n;
}

std::uint64_t Frontend::total_host_work() const {
    std::uint64_t n = 0;
    for (const Widget* w : widgets_) {
        n += w->host_work_done();
    }
    return n;
}

}  // namespace rtk::gui
