#include "gui/widget.hpp"

#include <cstdint>

#include "sysc/kernel.hpp"

namespace rtk::gui {

std::uint64_t HostCostModel::burn() const {
    // xorshift64 -- data-dependent so the loop cannot be folded away.
    volatile std::uint64_t x = 0x9E3779B97F4A7C15ull;
    for (std::uint64_t i = 0; i < iterations_; ++i) {
        std::uint64_t v = x;
        v ^= v << 13;
        v ^= v >> 7;
        v ^= v << 17;
        x = v;
    }
    return x;
}

Widget::Widget(std::string name, std::uint64_t host_cost_iterations)
    : name_(std::move(name)), cost_(host_cost_iterations) {}

void Widget::refresh() {
    const sysc::Time now = sysc::Kernel::current().now();
    if (ever_refreshed_ && !min_interval_.is_zero() &&
        now - last_refresh_ < min_interval_) {
        ++skipped_;
        return;
    }
    ever_refreshed_ = true;
    last_refresh_ = now;
    cost_.burn();
    host_work_ += cost_.iterations();
    last_render_ = render();
    ++refreshes_;
}

}  // namespace rtk::gui
