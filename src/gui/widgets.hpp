// Concrete widgets of the virtual system prototype (paper Fig 5-8):
// device views (LCD, keypad, SSD), the execution time/energy trace
// (Fig 6), the consumed time/energy distribution with battery bar
// (Fig 7), and a waveform probe (Fig 4).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "bfm/keypad.hpp"
#include "bfm/lcd.hpp"
#include "bfm/ssd.hpp"
#include "gui/widget.hpp"
#include "sim/sim_api.hpp"
#include "sim/stats.hpp"

namespace rtk::gui {

/// LCD panel view: the 16x2 text framed like a display bezel.
class LcdWidget final : public Widget {
public:
    LcdWidget(bfm::Lcd16x2& lcd, std::uint64_t host_cost = 20'000)
        : Widget("lcd", host_cost), lcd_(lcd) {}
    std::string render() override;

private:
    bfm::Lcd16x2& lcd_;
};

/// Seven-segment display view.
class SsdWidget final : public Widget {
public:
    SsdWidget(bfm::SevenSegmentDisplay& ssd, std::uint64_t host_cost = 5'000)
        : Widget("ssd", host_cost), ssd_(ssd) {}
    std::string render() override;

private:
    bfm::SevenSegmentDisplay& ssd_;
};

/// Keypad view; also the entry point for scripted user events
/// ("capture user events", paper §5).
class KeypadWidget final : public Widget {
public:
    struct ScriptEvent {
        sysc::Time at;
        unsigned key;
        bool press;  ///< false = release
    };

    KeypadWidget(bfm::Keypad4x4& pad, std::uint64_t host_cost = 2'000)
        : Widget("keypad", host_cost), pad_(pad) {}
    ~KeypadWidget() override;

    /// Inject a scripted scenario: a process spawned on `kernel` replays
    /// the events.
    void play_script(sysc::Kernel& kernel, std::vector<ScriptEvent> script);
    /// Ambient-context form: replays on the thread's current kernel.
    void play_script(std::vector<ScriptEvent> script);

    std::string render() override;
    std::uint64_t injected_events() const { return injected_; }

private:
    bfm::Keypad4x4& pad_;
    std::uint64_t injected_ = 0;
    sysc::Process* script_proc_ = nullptr;
};

/// Execution time/energy trace widget (Fig 6) -- step mode only.
class GanttWidget final : public Widget {
public:
    GanttWidget(const sim::SimApi& api, sysc::Time window, sysc::Time resolution,
                std::uint64_t host_cost = 50'000)
        : Widget("gantt", host_cost), api_(api), window_(window), resolution_(resolution) {}

    bool available_in(Mode mode) const override { return mode == Mode::step; }
    std::string render() override;

private:
    const sim::SimApi& api_;
    sysc::Time window_;
    sysc::Time resolution_;
};

/// Consumed time/energy distribution + battery widget (Fig 7) --
/// animate mode only.
class EnergyDistributionWidget final : public Widget {
public:
    EnergyDistributionWidget(const sim::SimApi& api, double battery_wh = 10.0,
                             std::uint64_t host_cost = 30'000)
        : Widget("energy", host_cost), api_(api), battery_(battery_wh) {}

    bool available_in(Mode mode) const override { return mode == Mode::animate; }
    std::string render() override;

    const sim::BatteryModel& battery() const { return battery_; }

private:
    const sim::SimApi& api_;
    sim::BatteryModel battery_;
};

}  // namespace rtk::gui
