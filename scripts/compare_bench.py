#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json results and print the deltas.

Usage: compare_bench.py OLD_DIR NEW_DIR

Walks every BENCH_*.json in NEW_DIR, pairs it with the same-named file in
OLD_DIR and prints a delta line for every shared numeric field (nested
fields are flattened to dotted paths; list elements are indexed). Files
or fields present on only one side are reported but never fatal.

The script is informational and ALWAYS exits 0: bench numbers from CI
runners are too noisy to gate a build on, the point is to make drifts
visible in the job log next to the run that caused them.
"""

import json
import sys
from pathlib import Path


def flatten(value, prefix=""):
    """Yield (dotted_path, leaf) pairs for every numeric leaf in a JSON tree."""
    if isinstance(value, dict):
        for key, sub in value.items():
            yield from flatten(sub, f"{prefix}.{key}" if prefix else key)
    elif isinstance(value, list):
        for i, sub in enumerate(value):
            yield from flatten(sub, f"{prefix}[{i}]")
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        yield prefix, float(value)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"  (unreadable: {path}: {err})")
        return None


def campaign_speedup(doc):
    """Best shard speedup in a BENCH_campaign_throughput.json, or None.

    Derived here rather than trusted from the file so the comparison
    works even across revisions that changed what the bench emits: the
    1-shard row is the baseline, the best scenarios_per_second at >1
    shards is the numerator.
    """
    rows = doc.get("results")
    if not isinstance(rows, list):
        return None
    base = None
    best = None
    for row in rows:
        rate = row.get("scenarios_per_second")
        if not isinstance(rate, (int, float)) or isinstance(rate, bool):
            continue
        if row.get("shards") == 1:
            base = rate
        else:
            best = rate if best is None else max(best, rate)
    if not base or best is None:
        return None
    return best / base


def replay_speedup(doc):
    """Best thread speedup in a BENCH_corpus_replay.json, or None.

    Same derivation policy as campaign_speedup: the 1-thread row is the
    baseline, the best scenarios_per_second at >1 threads the numerator.
    """
    rows = doc.get("results")
    if not isinstance(rows, list):
        return None
    base = None
    best = None
    for row in rows:
        rate = row.get("scenarios_per_second")
        if not isinstance(rate, (int, float)) or isinstance(rate, bool):
            continue
        if row.get("threads") == 1:
            base = rate
        else:
            best = rate if best is None else max(best, rate)
    if not base or best is None:
        return None
    return best / base


def compare_file(old_path, new_path):
    old_doc, new_doc = load(old_path), load(new_path)
    if old_doc is None or new_doc is None:
        return
    if new_path.name == "BENCH_campaign_throughput.json":
        old_s, new_s = campaign_speedup(old_doc), campaign_speedup(new_doc)
        if old_s is not None and new_s is not None:
            print(f"  derived shard speedup: {old_s:.2f}x -> {new_s:.2f}x")
    if new_path.name == "BENCH_corpus_replay.json":
        old_s, new_s = replay_speedup(old_doc), replay_speedup(new_doc)
        if old_s is not None and new_s is not None:
            print(f"  derived replay speedup: {old_s:.2f}x -> {new_s:.2f}x")
    old_fields = dict(flatten(old_doc))
    new_fields = dict(flatten(new_doc))
    shared = sorted(set(old_fields) & set(new_fields))
    if not shared:
        print("  (no shared numeric fields)")
        return
    for path in shared:
        if path.startswith("meta."):
            continue
        old_v, new_v = old_fields[path], new_fields[path]
        delta = new_v - old_v
        if old_v != 0:
            rel = f"{delta / abs(old_v) * 100.0:+.1f}%"
        else:
            rel = "n/a" if delta else "+0.0%"
        marker = ""
        if old_v != 0 and abs(delta / old_v) >= 0.10:
            marker = "  <-- >10% drift"
        print(f"  {path}: {old_v:g} -> {new_v:g} ({rel}){marker}")
    for path in sorted(set(new_fields) - set(old_fields)):
        print(f"  {path}: (new field) {new_fields[path]:g}")


def main(argv):
    if len(argv) != 3:
        print(__doc__)
        return 0
    old_dir, new_dir = Path(argv[1]), Path(argv[2])
    new_files = sorted(new_dir.glob("BENCH_*.json")) if new_dir.is_dir() else []
    if not new_files:
        print(f"no BENCH_*.json under {new_dir}; nothing to compare")
        return 0
    if not old_dir.is_dir():
        print(f"no previous results under {old_dir}; first run?")
        return 0
    for new_path in new_files:
        old_path = old_dir / new_path.name
        print(f"\n== {new_path.name} ==")
        if not old_path.is_file():
            print("  (no previous version)")
            continue
        compare_file(old_path, new_path)
    print("\n(informational only -- bench numbers never gate the build)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
