// rtk-trace -- the .rtktrace toolbox.
//
//   $ rtk-trace dump <trace.rtktrace>
//       One line per event, human-readable.
//   $ rtk-trace stats <trace.rtktrace>
//       Recompute the derived metrics offline and print them as JSON.
//   $ rtk-trace export --perfetto <trace.rtktrace> [-o out.json]
//       Chrome/Perfetto trace_event JSON (open in ui.perfetto.dev or
//       chrome://tracing); default output replaces the extension with
//       .perfetto.json.
//   $ rtk-trace selftest [dir]
//       End-to-end smoke (the ctest `tool-smoke` entry): run a real
//       traced scenario, write its capture under `dir` (default "."),
//       then dump + stats + export it through the same code paths as
//       the user-facing commands and cross-check the offline metrics
//       against the recorder's online numbers.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "api/api.hpp"
#include "harness/scenario.hpp"
#include "tkernel/tkernel.hpp"
#include "trace/trace.hpp"

using namespace rtk;
using sysc::Time;

namespace {

int usage() {
    std::fputs(
        "usage: rtk-trace <command> [args]\n"
        "  dump <trace.rtktrace>                       text dump\n"
        "  stats <trace.rtktrace>                      metrics as JSON\n"
        "  export --perfetto <trace.rtktrace> [-o f]   Perfetto JSON\n"
        "  selftest [dir]                              record + round-trip\n",
        stderr);
    return 2;
}

bool load(const std::string& path, trace::TraceDoc& doc) {
    std::string error;
    if (!trace::read_trace_file(path, doc, &error)) {
        std::fprintf(stderr, "rtk-trace: %s: %s\n", path.c_str(), error.c_str());
        return false;
    }
    return true;
}

int cmd_dump(const std::string& path) {
    trace::TraceDoc doc;
    if (!load(path, doc)) {
        return 1;
    }
    std::fputs(trace::dump_text(doc).c_str(), stdout);
    return 0;
}

int cmd_stats(const std::string& path) {
    trace::TraceDoc doc;
    if (!load(path, doc)) {
        return 1;
    }
    std::fputs((trace::accumulate(doc).to_json().dump(2) + "\n").c_str(),
               stdout);
    return 0;
}

int cmd_export(const std::string& path, std::string out_path) {
    trace::TraceDoc doc;
    if (!load(path, doc)) {
        return 1;
    }
    if (out_path.empty()) {
        out_path = path;
        const auto dot = out_path.rfind(".rtktrace");
        if (dot != std::string::npos) {
            out_path.resize(dot);
        }
        out_path += ".perfetto.json";
    }
    trace::PerfettoExporter exporter;
    std::ofstream out(out_path);
    if (!(out << exporter.export_json(doc))) {
        std::fprintf(stderr, "rtk-trace: cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::printf("wrote %s (%zu events, %zu threads)\n", out_path.c_str(),
                doc.events.size(), doc.threads.size());
    return 0;
}

// ---- selftest ---------------------------------------------------------------

/// A small producer/consumer workload with a timer and an in-run
/// annotation: enough to exercise every record kind the recorder emits
/// (defines, state changes, dispatches, wakeups, service sections, idle,
/// interrupt-context timer handlers, annotation).
void selftest_workload(Simulation& sim, const harness::ScenarioSpec&) {
    tkernel::TKernel* tk = &sim.os();
    auto h = std::make_shared<api::SystemHandles>();
    api::SystemBuilder b;
    b.semaphore("work");
    b.task("producer").priority(10).autostart().body([tk, h] {
        for (int i = 0; i < 20; ++i) {
            tk->tk_dly_tsk(2);
            h->semaphores[0].signal().expect("work signal");
        }
        if (trace::Recorder* rec = trace::Recorder::find(tk->sim())) {
            rec->annotate("selftest: producer done");
        }
    });
    b.task("consumer").priority(5).autostart().body([tk, h] {
        while (h->semaphores[0].wait().ok()) {
            tk->sim().SIM_WaitUnits(150, sim::ExecContext::task);
        }
    });
    b.cyclic("pacer").period(7).phase(7).handler([h](void*) {
        h->semaphores[0].signal().expect("pacer signal");
    });

    auto sys = std::make_shared<api::System>(sim.os());
    sim.retain(sys);
    sim.retain(h);
    auto spec = std::make_shared<const api::SystemSpec>(std::move(b).take_spec());
    sim.set_user_main([sys, h, spec] {
        *h = std::move(api::instantiate(*sys, *spec)).value();
        h->release_all();
    });
}

int fail(const char* what) {
    std::fprintf(stderr, "rtk-trace selftest: FAILED: %s\n", what);
    return 1;
}

int cmd_selftest(const std::string& dir) {
    const std::string path = dir + "/rtk_trace_selftest.rtktrace";

    harness::ScenarioSpec spec;
    spec.name = "rtk-trace/selftest";
    spec.duration = Time::ms(120);
    spec.workload = &selftest_workload;
    spec.trace.enabled = true;
    spec.trace.path = path;
    const harness::ScenarioResult run = harness::run_scenario(spec);
    if (!run.passed) {
        std::fprintf(stderr, "  scenario error: %s\n", run.error.c_str());
        return fail("traced scenario did not pass");
    }
    if (!run.traced || run.trace_events == 0 || run.trace_dropped != 0) {
        return fail("capture empty or dropped records");
    }

    trace::TraceDoc doc;
    if (!load(path, doc)) {
        return fail("written capture does not parse");
    }
    if (!doc.has_footer || doc.recorded_events != run.trace_events) {
        return fail("footer missing or event count mismatch");
    }
    if (doc.threads.size() < 3) {  // producer, consumer, pacer at least
        return fail("thread defines missing");
    }
    bool annotated = false;
    for (const trace::TraceEvent& e : doc.events) {
        annotated |= e.kind == trace::EventKind::annotation;
    }
    if (!annotated) {
        return fail("in-run annotation not captured");
    }

    // Offline metrics must reproduce the online ones (nothing dropped).
    const trace::Metrics offline = trace::accumulate(doc);
    if (offline.to_json().dump(-1) != run.metrics.to_json().dump(-1)) {
        return fail("offline metrics differ from online metrics");
    }

    // The Perfetto export must be valid JSON with a traceEvents array.
    trace::PerfettoExporter exporter;
    const std::string json = exporter.export_json(doc);
    api::Json parsed;
    std::string error;
    if (!api::Json::parse(json, parsed, &error)) {
        std::fprintf(stderr, "  %s\n", error.c_str());
        return fail("Perfetto export is not valid JSON");
    }
    if (!parsed.has("traceEvents") ||
        parsed.at("traceEvents").items().empty()) {
        return fail("Perfetto export has no traceEvents");
    }

    // And the user-facing commands must run on the capture.
    if (cmd_dump(path) != 0 || cmd_stats(path) != 0 ||
        cmd_export(path, dir + "/rtk_trace_selftest.perfetto.json") != 0) {
        return fail("dump/stats/export on the capture failed");
    }

    std::printf("rtk-trace selftest: OK (%llu events, %zu threads, %s)\n",
                static_cast<unsigned long long>(run.trace_events),
                doc.threads.size(), path.c_str());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        return usage();
    }
    const std::string cmd = argv[1];
    if (cmd == "dump" && argc == 3) {
        return cmd_dump(argv[2]);
    }
    if (cmd == "stats" && argc == 3) {
        return cmd_stats(argv[2]);
    }
    if (cmd == "export" && argc >= 4 && std::strcmp(argv[2], "--perfetto") == 0) {
        std::string out_path;
        if (argc == 6 && std::strcmp(argv[4], "-o") == 0) {
            out_path = argv[5];
        } else if (argc != 4) {
            return usage();
        }
        return cmd_export(argv[3], out_path);
    }
    if (cmd == "selftest" && argc <= 3) {
        return cmd_selftest(argc == 3 ? argv[2] : ".");
    }
    return usage();
}
