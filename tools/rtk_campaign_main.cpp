// rtk-campaign -- the sharded, resumable campaign service CLI.
//
//   $ rtk-campaign submit <dir> --kind fuzz|fault [options]
//       Create the campaign directory: manifest.json + jobs.jsonl
//       (atomic + durable). A campaign is submitted exactly once.
//   $ rtk-campaign run <dir> [--shards N] [--rounds N] [--in-process]
//       Execute (or continue) the campaign: rounds of shard worker
//       processes lease job batches from the shared cursor and stream
//       records into per-shard JSONL stores.
//   $ rtk-campaign resume <dir> [...]
//       Alias of run -- resuming after a crash (even kill -9) is the
//       same loop: only jobs without a stored record re-run.
//   $ rtk-campaign status <dir>
//       Progress + outcome tallies from a store scan.
//   $ rtk-campaign merge <dir> [-o report.json]
//       Write the merged report: byte-identical for any execution
//       history (shard count, crashes, resumes) that covered all jobs.
//   $ rtk-campaign shard <dir> --id K --runlist F
//       Internal: one shard worker (what run fork/execs).
//   $ rtk-campaign selftest [dir]
//       End-to-end smoke (the ctest `tool-smoke` entry): submit a small
//       fuzz campaign, run it with 2 forked shards, re-run it
//       single-shard in-process in a second directory and assert the two
//       merged reports are byte-identical.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_util.hpp"
#include "harness/campaign.hpp"
#include "harness/campaign_engine.hpp"

using namespace rtk;
using namespace rtk::harness;

namespace {

int usage() {
    std::fputs(
        "usage: rtk-campaign <command> [args]\n"
        "  submit <dir> --kind fuzz|fault [--name N] [--seed S]\n"
        "         [--seeds N] [--single-policy]        (fuzz corpus)\n"
        "         [--corpus N|DIR] [--per-workload N]  (fault corpus;\n"
        "          DIR draws workloads from a scenario corpus, --corpus\n"
        "          then still bounds the count via --corpus-count)\n"
        "         [--corpus-count N]                   (with --corpus DIR)\n"
        "         [--claim-batch N] [--flush-every N]\n"
        "  run <dir> [--shards N] [--rounds N] [--worker EXE]\n"
        "            [--in-process] [--verbose]\n"
        "  resume <dir> [...]                          alias of run\n"
        "  status <dir>\n"
        "  merge <dir> [-o report.json]\n"
        "  shard <dir> --id K --runlist F              internal worker\n"
        "  selftest [dir]\n",
        stderr);
    return 2;
}

std::uint64_t arg_count(const char* value, const char* flag) {
    return bench::parse_count_or_die(value, flag);
}

int cmd_submit(int argc, char** argv) {
    if (argc < 1) {
        return usage();
    }
    const std::string dir = argv[0];
    campaign::Manifest m;
    bool have_kind = false;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char* {
            return ++i < argc ? argv[i] : nullptr;
        };
        if (flag == "--kind") {
            const char* v = next();
            if (v == nullptr || !campaign::kind_from_string(v, m.kind)) {
                std::fputs("rtk-campaign: --kind must be fuzz or fault\n",
                           stderr);
                return 2;
            }
            have_kind = true;
        } else if (flag == "--name") {
            const char* v = next();
            if (v == nullptr) {
                return usage();
            }
            m.name = v;
        } else if (flag == "--seed") {
            m.base_seed = arg_count(next(), "--seed");
        } else if (flag == "--seeds") {
            m.seeds = static_cast<std::size_t>(arg_count(next(), "--seeds"));
        } else if (flag == "--single-policy") {
            m.both_policies = false;
        } else if (flag == "--corpus") {
            // All digits: the historical workload count. Anything else:
            // a scenario-corpus directory to draw workloads from.
            const char* v = next();
            if (v == nullptr || *v == '\0') {
                return usage();
            }
            if (std::string(v).find_first_not_of("0123456789") ==
                std::string::npos) {
                m.corpus = static_cast<std::size_t>(arg_count(v, "--corpus"));
            } else {
                m.corpus_dir = v;
            }
        } else if (flag == "--corpus-count") {
            m.corpus =
                static_cast<std::size_t>(arg_count(next(), "--corpus-count"));
        } else if (flag == "--per-workload") {
            m.injections_per_workload =
                static_cast<std::size_t>(arg_count(next(), "--per-workload"));
        } else if (flag == "--claim-batch") {
            m.claim_batch =
                static_cast<std::size_t>(arg_count(next(), "--claim-batch"));
        } else if (flag == "--flush-every") {
            m.flush_every =
                static_cast<std::size_t>(arg_count(next(), "--flush-every"));
        } else {
            std::fprintf(stderr, "rtk-campaign: unknown flag %s\n",
                         flag.c_str());
            return 2;
        }
    }
    if (!have_kind) {
        std::fputs("rtk-campaign: submit requires --kind\n", stderr);
        return 2;
    }
    std::string error;
    if (!campaign::init_campaign(dir, m, &error)) {
        std::fprintf(stderr, "rtk-campaign: %s\n", error.c_str());
        return 1;
    }
    std::printf("submitted %s campaign '%s': %zu jobs in %s\n",
                campaign::to_string(m.kind), m.name.c_str(), m.total_jobs(),
                dir.c_str());
    return 0;
}

int cmd_run(int argc, char** argv) {
    if (argc < 1) {
        return usage();
    }
    const std::string dir = argv[0];
    campaign::EngineOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char* {
            return ++i < argc ? argv[i] : nullptr;
        };
        if (flag == "--shards") {
            opts.shards = static_cast<unsigned>(arg_count(next(), "--shards"));
        } else if (flag == "--rounds") {
            opts.max_rounds =
                static_cast<std::size_t>(arg_count(next(), "--rounds"));
        } else if (flag == "--worker") {
            const char* v = next();
            if (v == nullptr) {
                return usage();
            }
            opts.worker_exe = v;
        } else if (flag == "--in-process") {
            opts.in_process = true;
        } else if (flag == "--verbose") {
            opts.verbose = true;
        } else {
            std::fprintf(stderr, "rtk-campaign: unknown flag %s\n",
                         flag.c_str());
            return 2;
        }
    }
    const campaign::EngineResult res = campaign::run_campaign(dir, opts);
    std::printf("%s: %zu/%zu jobs done, %zu round(s), %zu shard failure(s)\n",
                res.complete ? "complete" : "incomplete", res.done_jobs,
                res.total_jobs, res.rounds, res.shard_failures);
    if (!res.error.empty()) {
        std::fprintf(stderr, "rtk-campaign: %s\n", res.error.c_str());
    }
    return res.complete ? 0 : 1;
}

int cmd_status(const std::string& dir) {
    const campaign::CampaignStatus st = campaign::query_status(dir);
    if (!st.ok) {
        std::fprintf(stderr, "rtk-campaign: %s\n", st.error.c_str());
        return 1;
    }
    std::printf("campaign '%s' (%s): %zu/%zu jobs done\n",
                st.manifest.name.c_str(),
                campaign::to_string(st.manifest.kind), st.done_jobs,
                st.total_jobs);
    std::printf("  stores: %zu file(s), %zu torn line(s) skipped, "
                "%zu duplicate record(s)\n",
                st.store_files, st.skipped_lines, st.duplicates);
    for (const auto& [name, count] : st.tallies) {
        std::printf("  %-20s %zu\n", name.c_str(), count);
    }
    return st.done_jobs >= st.total_jobs ? 0 : 3;  // 3 = in progress
}

int cmd_merge(const std::string& dir, const std::string& out_path) {
    std::string error;
    bool complete = false;
    if (!campaign::merge_campaign(dir, out_path, &error, &complete)) {
        std::fprintf(stderr, "rtk-campaign: %s\n", error.c_str());
        return 1;
    }
    const std::string path =
        out_path.empty() ? campaign::report_path(dir) : out_path;
    std::printf("wrote %s (%s)\n", path.c_str(),
                complete ? "complete" : "INCOMPLETE");
    return complete ? 0 : 3;
}

int cmd_shard(int argc, char** argv) {
    if (argc < 1) {
        return usage();
    }
    const std::string dir = argv[0];
    unsigned shard_id = 0;
    std::string runlist;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char* {
            return ++i < argc ? argv[i] : nullptr;
        };
        if (flag == "--id") {
            shard_id = static_cast<unsigned>(arg_count(next(), "--id"));
        } else if (flag == "--runlist") {
            const char* v = next();
            if (v == nullptr) {
                return usage();
            }
            runlist = v;
        } else {
            return usage();
        }
    }
    if (runlist.empty()) {
        return usage();
    }
    return campaign::run_shard(dir, shard_id, runlist);
}

// ---- selftest ---------------------------------------------------------------

int fail(const char* what) {
    std::fprintf(stderr, "rtk-campaign selftest: FAILED: %s\n", what);
    return 1;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string{std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>()};
}

int cmd_selftest(const std::string& dir) {
    const std::string sharded = dir + "/campaign_selftest_sharded";
    const std::string serial = dir + "/campaign_selftest_serial";
    // Fresh directories: submit refuses to overwrite an existing
    // campaign, and a previous selftest (or a killed one) leaves these
    // behind.
    std::error_code ec;
    std::filesystem::remove_all(sharded, ec);
    std::filesystem::remove_all(serial, ec);

    campaign::Manifest m;
    m.name = "selftest";
    m.kind = campaign::Kind::fuzz;
    m.base_seed = 990001;  // disjoint from the fuzz-smoke/bench blocks
    m.seeds = 4;
    m.both_policies = true;
    m.claim_batch = 2;
    m.flush_every = 2;

    std::string error;
    if (!campaign::init_campaign(sharded, m, &error) ||
        !campaign::init_campaign(serial, m, &error)) {
        std::fprintf(stderr, "  %s\n", error.c_str());
        return fail("submit");
    }

    // Leg 1: two forked shard processes (this very binary as worker).
    campaign::EngineOptions forked;
    forked.shards = 2;
    const campaign::EngineResult r1 = campaign::run_campaign(sharded, forked);
    if (!r1.complete || r1.shard_failures != 0) {
        std::fprintf(stderr, "  %s\n", r1.error.c_str());
        return fail("forked run incomplete");
    }

    // Leg 2: one in-process shard, no fork at all.
    campaign::EngineOptions inproc;
    inproc.shards = 1;
    inproc.in_process = true;
    const campaign::EngineResult r2 = campaign::run_campaign(serial, inproc);
    if (!r2.complete) {
        std::fprintf(stderr, "  %s\n", r2.error.c_str());
        return fail("in-process run incomplete");
    }

    bool complete = false;
    if (!campaign::merge_campaign(sharded, "", &error, &complete) ||
        !complete ||
        !campaign::merge_campaign(serial, "", &error, &complete) ||
        !complete) {
        std::fprintf(stderr, "  %s\n", error.c_str());
        return fail("merge");
    }

    const std::string rep1 = slurp(campaign::report_path(sharded));
    const std::string rep2 = slurp(campaign::report_path(serial));
    if (rep1.empty() || rep1 != rep2) {
        return fail("sharded and serial reports are not byte-identical");
    }
    api::Json doc;
    if (!api::Json::parse(rep1, doc, &error) ||
        doc.at("rtk_campaign_report").as_u64() != 1 ||
        doc.at("campaign").at("jobs").as_u64() != m.total_jobs()) {
        return fail("report does not parse back");
    }

    const campaign::CampaignStatus st = campaign::query_status(sharded);
    if (!st.ok || st.done_jobs != m.total_jobs()) {
        return fail("status scan disagrees with the run");
    }

    std::printf("rtk-campaign selftest: OK (%zu jobs, reports byte-identical "
                "across 2 forked shards vs 1 in-process shard)\n",
                m.total_jobs());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        return usage();
    }
    const std::string cmd = argv[1];
    if (cmd == "submit" && argc >= 3) {
        return cmd_submit(argc - 2, argv + 2);
    }
    if ((cmd == "run" || cmd == "resume") && argc >= 3) {
        return cmd_run(argc - 2, argv + 2);
    }
    if (cmd == "status" && argc == 3) {
        return cmd_status(argv[2]);
    }
    if (cmd == "merge" && argc >= 3) {
        std::string out_path;
        if (argc == 5 && std::strcmp(argv[3], "-o") == 0) {
            out_path = argv[4];
        } else if (argc != 3) {
            return usage();
        }
        return cmd_merge(argv[2], out_path);
    }
    if (cmd == "shard" && argc >= 3) {
        return cmd_shard(argc - 2, argv + 2);
    }
    if (cmd == "selftest" && argc <= 3) {
        return cmd_selftest(argc == 3 ? argv[2] : ".");
    }
    return usage();
}
