// rtk-corpus -- the scenario-corpus maintenance CLI.
//
//   $ rtk-corpus gen <dir> [--per-family N] [--seed S] [--families a,b]
//                    [--size-min N] [--size-max N] [--threads N]
//       Generate a versioned corpus: one JSON file per scenario, grouped
//       by family, then run every scenario once (parallel batch) and
//       write the pinned index.json (byte digest + behaviour
//       fingerprint + check verdict per file).
//   $ rtk-corpus validate <dir>
//       No simulation: strict-parse every indexed file, compare byte
//       digests against the index, flag stray/missing files.
//   $ rtk-corpus replay <dir> [--threads N] [--sample N]
//       Re-run (all or an evenly-spaced sample of) the corpus and
//       compare behaviour fingerprints and check verdicts against the
//       pinned index -- the kernel-regression gate.
//   $ rtk-corpus run <file>
//       Run one scenario file and print its result and check verdicts.
//   $ rtk-corpus stats <dir>
//       Per-family population and structural totals.
//   $ rtk-corpus selftest [dir]
//       End-to-end smoke (the ctest `tool-smoke` entry): gen a small
//       corpus, validate it, replay it serially and in parallel
//       (fingerprints must match the index both ways), assert generator
//       determinism, then drive a fault campaign from it.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "corpus/checks.hpp"
#include "corpus/families.hpp"
#include "corpus/index.hpp"
#include "corpus/scenario_file.hpp"
#include "harness/campaign.hpp"
#include "harness/campaign_engine.hpp"
#include "harness/corpus_bridge.hpp"
#include "harness/runner.hpp"
#include "sysc/fsio.hpp"

using namespace rtk;

namespace {

int usage() {
    std::fputs(
        "usage: rtk-corpus <command> [args]\n"
        "  gen <dir> [--per-family N] [--seed S] [--families a,b]\n"
        "            [--size-min N] [--size-max N] [--threads N]\n"
        "  validate <dir>\n"
        "  replay <dir> [--threads N] [--sample N]\n"
        "  run <file>\n"
        "  stats <dir>\n"
        "  selftest [dir]\n",
        stderr);
    return 2;
}

std::uint64_t arg_count(const char* value, const char* flag) {
    return bench::parse_count_or_die(value, flag);
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string{std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>()};
}

/// One loaded corpus entry: the pinned index row plus the parsed file.
struct Loaded {
    corpus::IndexEntry entry;
    corpus::ScenarioFile scenario;
};

/// Load the index and strict-parse every (or every sampled) file,
/// verifying byte digests on the way. Returns false with a message on
/// the first broken entry.
bool load_corpus(const std::string& dir, std::size_t sample,
                 std::vector<Loaded>& out, std::string& error) {
    corpus::CorpusIndex index;
    if (!corpus::CorpusIndex::load(dir, index, &error)) {
        return false;
    }
    index.sort();
    if (index.entries.empty()) {
        error = "index has no entries";
        return false;
    }
    // Evenly-spaced deterministic sample (stride over the sorted index).
    std::size_t stride = 1;
    if (sample != 0 && sample < index.entries.size()) {
        stride = index.entries.size() / sample;
    }
    for (std::size_t i = 0; i < index.entries.size(); i += stride) {
        const corpus::IndexEntry& e = index.entries[i];
        const std::string text = slurp(dir + "/" + e.file);
        if (text.empty()) {
            error = e.file + ": missing or empty";
            return false;
        }
        if (corpus::fnv1a64(text) != e.digest) {
            error = e.file + ": byte digest mismatch against index";
            return false;
        }
        Loaded l;
        l.entry = e;
        if (!corpus::ScenarioFile::parse(text, l.scenario, &error)) {
            error = e.file + ": " + error;
            return false;
        }
        out.push_back(std::move(l));
    }
    return true;
}

/// Run a batch of loaded scenarios and return per-entry {fingerprint,
/// passed (clean run + checks)} in input order.
struct RunOutcome {
    std::uint64_t fingerprint = 0;
    bool passed = false;
    std::string detail;
};

std::vector<RunOutcome> run_batch(const std::vector<Loaded>& loaded,
                                  unsigned threads) {
    std::vector<harness::ScenarioSpec> specs;
    specs.reserve(loaded.size());
    for (const Loaded& l : loaded) {
        harness::ScenarioSpec sc = harness::scenario_from_corpus(l.scenario);
        sc.trace.enabled = true;  // checks need metrics
        specs.push_back(std::move(sc));
    }
    harness::ScenarioRunner runner({threads});
    const harness::BatchReport batch = runner.run(specs);

    std::vector<RunOutcome> out(loaded.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        const harness::ScenarioResult& r = batch.results[i];
        RunOutcome& o = out[i];
        o.fingerprint = r.fingerprint;
        const auto checks =
            corpus::evaluate_checks(loaded[i].scenario, r.metrics);
        o.passed = r.passed && corpus::all_passed(checks);
        if (!r.passed) {
            o.detail = r.error;
        } else {
            for (const corpus::CheckResult& c : checks) {
                if (!c.ok) {
                    o.detail = c.task + ": " + c.detail;
                    break;
                }
            }
        }
    }
    return out;
}

// ---- gen --------------------------------------------------------------------

std::vector<std::string> split_csv(const std::string& s) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        const std::size_t end = comma == std::string::npos ? s.size() : comma;
        if (end > start) {
            out.push_back(s.substr(start, end - start));
        }
        if (comma == std::string::npos) {
            break;
        }
        start = comma + 1;
    }
    return out;
}

int cmd_gen(int argc, char** argv) {
    if (argc < 1) {
        return usage();
    }
    const std::string dir = argv[0];
    std::size_t per_family = 16;
    std::uint64_t base_seed = 1;
    int size_min = 2;
    int size_max = 8;
    unsigned threads = 0;
    std::vector<std::string> families = corpus::family_names();
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char* {
            return ++i < argc ? argv[i] : nullptr;
        };
        if (flag == "--per-family") {
            per_family =
                static_cast<std::size_t>(arg_count(next(), "--per-family"));
        } else if (flag == "--seed") {
            base_seed = arg_count(next(), "--seed");
        } else if (flag == "--size-min") {
            size_min = static_cast<int>(arg_count(next(), "--size-min"));
        } else if (flag == "--size-max") {
            size_max = static_cast<int>(arg_count(next(), "--size-max"));
        } else if (flag == "--threads") {
            threads = static_cast<unsigned>(arg_count(next(), "--threads"));
        } else if (flag == "--families") {
            const char* v = next();
            if (v == nullptr) {
                return usage();
            }
            families = split_csv(v);
            for (const std::string& f : families) {
                corpus::ScenarioFile probe;
                if (!corpus::generate_family(f, {1, 1}, probe)) {
                    std::fprintf(stderr, "rtk-corpus: unknown family '%s'\n",
                                 f.c_str());
                    return 2;
                }
            }
        } else {
            std::fprintf(stderr, "rtk-corpus: unknown flag %s\n", flag.c_str());
            return 2;
        }
    }
    if (per_family == 0 || families.empty() || size_max < size_min) {
        return usage();
    }

    std::vector<Loaded> loaded;
    std::string error;
    for (const std::string& family : families) {
        std::error_code ec;
        std::filesystem::create_directories(dir + "/" + family, ec);
        if (ec) {
            std::fprintf(stderr, "rtk-corpus: cannot create %s/%s: %s\n",
                         dir.c_str(), family.c_str(), ec.message().c_str());
            return 1;
        }
        const int spread = size_max - size_min + 1;
        for (std::size_t i = 0; i < per_family; ++i) {
            corpus::FamilyParams p;
            p.size = size_min + static_cast<int>(i % static_cast<std::size_t>(spread));
            p.seed = base_seed + i;
            Loaded l;
            if (!corpus::generate_family(family, p, l.scenario)) {
                std::fprintf(stderr, "rtk-corpus: generate %s failed\n",
                             family.c_str());
                return 1;
            }
            char leaf[64];
            std::snprintf(leaf, sizeof leaf, "%s/%s_%04zu.json", family.c_str(),
                          family.c_str(), i);
            l.entry.file = leaf;
            l.entry.family = family;
            const std::string text = l.scenario.dump();
            l.entry.digest = corpus::fnv1a64(text);
            if (!sysc::write_file_atomic(dir + "/" + leaf, text, &error)) {
                std::fprintf(stderr, "rtk-corpus: write %s: %s\n", leaf,
                             error.c_str());
                return 1;
            }
            loaded.push_back(std::move(l));
        }
    }

    // Pin behaviour: one (parallel) run of the whole corpus.
    const std::vector<RunOutcome> runs = run_batch(loaded, threads);
    corpus::CorpusIndex index;
    std::size_t passed = 0;
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        corpus::IndexEntry e = loaded[i].entry;
        e.fingerprint = runs[i].fingerprint;
        e.passed = runs[i].passed;
        passed += runs[i].passed ? 1 : 0;
        index.entries.push_back(std::move(e));
    }
    index.sort();
    if (!index.save(dir, &error)) {
        std::fprintf(stderr, "rtk-corpus: write index: %s\n", error.c_str());
        return 1;
    }
    std::printf("generated %zu scenarios (%zu families) in %s: %zu passed, %zu failed checks\n",
                loaded.size(), families.size(), dir.c_str(), passed,
                loaded.size() - passed);
    return 0;
}

// ---- validate ---------------------------------------------------------------

int cmd_validate(int argc, char** argv) {
    if (argc < 1) {
        return usage();
    }
    const std::string dir = argv[0];
    std::vector<Loaded> loaded;
    std::string error;
    if (!load_corpus(dir, 0, loaded, error)) {
        std::fprintf(stderr, "rtk-corpus: validate %s: %s\n", dir.c_str(),
                     error.c_str());
        return 1;
    }
    // Stray scan: every .json under the corpus root (except the index
    // itself) must be pinned.
    corpus::CorpusIndex index;
    (void)corpus::CorpusIndex::load(dir, index, nullptr);
    std::size_t strays = 0;
    for (const auto& de : std::filesystem::recursive_directory_iterator(dir)) {
        if (!de.is_regular_file() || de.path().extension() != ".json") {
            continue;
        }
        const std::string rel =
            std::filesystem::relative(de.path(), dir).generic_string();
        if (rel == "index.json" || index.find(rel) != nullptr) {
            continue;
        }
        std::fprintf(stderr, "rtk-corpus: stray file not in index: %s\n",
                     rel.c_str());
        ++strays;
    }
    if (strays != 0) {
        return 1;
    }
    std::map<std::string, std::size_t> families;
    for (const Loaded& l : loaded) {
        ++families[l.entry.family];
    }
    std::printf("validated %zu scenarios (%zu families) in %s\n", loaded.size(),
                families.size(), dir.c_str());
    return 0;
}

// ---- replay -----------------------------------------------------------------

int cmd_replay(int argc, char** argv) {
    if (argc < 1) {
        return usage();
    }
    const std::string dir = argv[0];
    unsigned threads = 0;
    std::size_t sample = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char* {
            return ++i < argc ? argv[i] : nullptr;
        };
        if (flag == "--threads") {
            threads = static_cast<unsigned>(arg_count(next(), "--threads"));
        } else if (flag == "--sample") {
            sample = static_cast<std::size_t>(arg_count(next(), "--sample"));
        } else {
            std::fprintf(stderr, "rtk-corpus: unknown flag %s\n", flag.c_str());
            return 2;
        }
    }
    std::vector<Loaded> loaded;
    std::string error;
    if (!load_corpus(dir, sample, loaded, error)) {
        std::fprintf(stderr, "rtk-corpus: replay %s: %s\n", dir.c_str(),
                     error.c_str());
        return 1;
    }
    const std::vector<RunOutcome> runs = run_batch(loaded, threads);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        const corpus::IndexEntry& e = loaded[i].entry;
        if (runs[i].fingerprint != e.fingerprint) {
            std::fprintf(stderr,
                         "rtk-corpus: %s: fingerprint 0x%016llx != pinned "
                         "0x%016llx\n",
                         e.file.c_str(),
                         static_cast<unsigned long long>(runs[i].fingerprint),
                         static_cast<unsigned long long>(e.fingerprint));
            ++mismatches;
        } else if (runs[i].passed != e.passed) {
            std::fprintf(stderr, "rtk-corpus: %s: verdict %s != pinned %s (%s)\n",
                         e.file.c_str(), runs[i].passed ? "pass" : "fail",
                         e.passed ? "pass" : "fail", runs[i].detail.c_str());
            ++mismatches;
        }
    }
    if (mismatches != 0) {
        std::fprintf(stderr, "rtk-corpus: replay %s: %zu of %zu diverged\n",
                     dir.c_str(), mismatches, loaded.size());
        return 1;
    }
    std::printf("replayed %zu scenarios in %s: all fingerprints match the index\n",
                loaded.size(), dir.c_str());
    return 0;
}

// ---- run --------------------------------------------------------------------

int cmd_run(int argc, char** argv) {
    if (argc < 1) {
        return usage();
    }
    const std::string path = argv[0];
    const std::string text = slurp(path);
    std::string error;
    corpus::ScenarioFile scenario;
    if (text.empty() || !corpus::ScenarioFile::parse(text, scenario, &error)) {
        std::fprintf(stderr, "rtk-corpus: %s: %s\n", path.c_str(),
                     text.empty() ? "missing or empty" : error.c_str());
        return 1;
    }
    const harness::CorpusRunReport report =
        harness::run_corpus_scenario(scenario);
    std::printf("%s: %s (fingerprint 0x%016llx, sim %s, %llu trace events)\n",
                scenario.name.c_str(), report.passed() ? "PASS" : "FAIL",
                static_cast<unsigned long long>(report.result.fingerprint),
                report.result.sim_time.to_string().c_str(),
                static_cast<unsigned long long>(report.result.trace_events));
    if (!report.result.passed) {
        std::printf("  run error: %s\n", report.result.error.c_str());
    }
    for (const corpus::CheckResult& c : report.checks) {
        std::printf("  check %-12s %s: %s\n", c.task.c_str(),
                    c.ok ? "ok" : "FAIL", c.detail.c_str());
    }
    return report.passed() ? 0 : 1;
}

// ---- stats ------------------------------------------------------------------

int cmd_stats(int argc, char** argv) {
    if (argc < 1) {
        return usage();
    }
    const std::string dir = argv[0];
    std::vector<Loaded> loaded;
    std::string error;
    if (!load_corpus(dir, 0, loaded, error)) {
        std::fprintf(stderr, "rtk-corpus: stats %s: %s\n", dir.c_str(),
                     error.c_str());
        return 1;
    }
    struct FamilyStats {
        std::size_t scenarios = 0;
        std::size_t passed = 0;
        std::size_t tasks = 0;
        std::size_t objects = 0;
        std::size_t programs = 0;
        std::size_t ops = 0;
        std::size_t checks = 0;
    };
    std::map<std::string, FamilyStats> families;
    for (const Loaded& l : loaded) {
        FamilyStats& f = families[l.entry.family];
        ++f.scenarios;
        f.passed += l.entry.passed ? 1 : 0;
        f.tasks += l.scenario.system.tasks.size();
        f.objects += l.scenario.system.object_count();
        f.programs += l.scenario.programs.size();
        for (const auto& [name, prog] : l.scenario.programs) {
            f.ops += prog.size();
        }
        f.checks += l.scenario.checks.size();
    }
    std::printf("%-18s %9s %7s %7s %8s %9s %7s %7s\n", "family", "scenarios",
                "passed", "tasks", "objects", "programs", "ops", "checks");
    FamilyStats total;
    for (const auto& [name, f] : families) {
        std::printf("%-18s %9zu %7zu %7zu %8zu %9zu %7zu %7zu\n", name.c_str(),
                    f.scenarios, f.passed, f.tasks, f.objects, f.programs,
                    f.ops, f.checks);
        total.scenarios += f.scenarios;
        total.passed += f.passed;
        total.tasks += f.tasks;
        total.objects += f.objects;
        total.programs += f.programs;
        total.ops += f.ops;
        total.checks += f.checks;
    }
    std::printf("%-18s %9zu %7zu %7zu %8zu %9zu %7zu %7zu\n", "total",
                total.scenarios, total.passed, total.tasks, total.objects,
                total.programs, total.ops, total.checks);
    return 0;
}

// ---- selftest ---------------------------------------------------------------

int fail(const char* what) {
    std::fprintf(stderr, "rtk-corpus selftest: FAILED: %s\n", what);
    return 1;
}

int cmd_selftest(const std::string& base) {
    const std::string dir = base + "/corpus_selftest";
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);

    // gen: 4 families x 3 scenarios, small sizes, a seed block disjoint
    // from the checked-in corpus.
    {
        const char* argv_gen[] = {dir.c_str(),     "--per-family", "3",
                                  "--seed",        "7700001",      "--size-min",
                                  "2",             "--size-max",   "5",
                                  "--threads",     "2"};
        if (cmd_gen(static_cast<int>(std::size(argv_gen)),
                    const_cast<char**>(argv_gen)) != 0) {
            return fail("gen");
        }
    }
    {
        const char* argv_val[] = {dir.c_str()};
        if (cmd_validate(1, const_cast<char**>(argv_val)) != 0) {
            return fail("validate");
        }
    }

    // Generator determinism: the same (family, size, seed) triple must
    // reproduce the on-disk bytes exactly.
    {
        corpus::ScenarioFile again;
        if (!corpus::generate_family("pipeline", {2, 7700001}, again)) {
            return fail("re-generate");
        }
        const std::string pinned = slurp(dir + "/pipeline/pipeline_0000.json");
        if (pinned.empty() || again.dump() != pinned) {
            return fail("generator is not byte-deterministic");
        }
    }

    // Replay: serial and parallel runs must both match the pinned index.
    {
        const char* argv_serial[] = {dir.c_str(), "--threads", "1"};
        if (cmd_replay(3, const_cast<char**>(argv_serial)) != 0) {
            return fail("serial replay diverged from the index");
        }
        const char* argv_par[] = {dir.c_str(), "--threads", "4"};
        if (cmd_replay(3, const_cast<char**>(argv_par)) != 0) {
            return fail("parallel replay diverged from the index");
        }
    }

    // A fault campaign drawn from the corpus, end to end.
    {
        const std::string cdir = base + "/corpus_selftest_campaign";
        std::filesystem::remove_all(cdir, ec);
        harness::campaign::Manifest m;
        m.name = "corpus-selftest";
        m.kind = harness::campaign::Kind::fault;
        m.base_seed = 7700501;
        m.corpus = 2;
        m.injections_per_workload = 3;
        m.corpus_dir = dir;
        std::string error;
        if (!harness::campaign::init_campaign(cdir, m, &error)) {
            std::fprintf(stderr, "  %s\n", error.c_str());
            return fail("campaign submit");
        }
        harness::campaign::EngineOptions opts;
        opts.shards = 1;
        opts.in_process = true;
        const harness::campaign::EngineResult r =
            harness::campaign::run_campaign(cdir, opts);
        if (!r.complete) {
            std::fprintf(stderr, "  %s\n", r.error.c_str());
            return fail("campaign run incomplete");
        }
        bool complete = false;
        if (!harness::campaign::merge_campaign(cdir, "", &error, &complete) ||
            !complete) {
            std::fprintf(stderr, "  %s\n", error.c_str());
            return fail("campaign merge");
        }
        api::Json doc;
        if (!api::Json::parse(slurp(harness::campaign::report_path(cdir)), doc,
                              &error) ||
            doc.at("campaign").at("jobs").as_u64() != m.total_jobs()) {
            return fail("campaign report does not parse back");
        }
        // The corpus workloads must actually have run: a skipped record
        // means the corpus could not be loaded or profiled.
        std::vector<harness::campaign::Job> jobs;
        harness::campaign::StoreScan scan;
        if (!harness::campaign::load_jobs(cdir, jobs, &error) ||
            !harness::campaign::scan_stores(cdir, scan, &error)) {
            return fail("campaign store scan");
        }
        for (const auto& [id, rec] : scan.records) {
            if (rec.at("skipped").as_bool()) {
                std::fprintf(stderr, "  job %llu skipped: %s\n",
                             static_cast<unsigned long long>(id),
                             rec.at("reason").as_string().c_str());
                return fail("campaign skipped corpus workloads");
            }
        }
    }

    std::puts("rtk-corpus selftest: OK");
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        return usage();
    }
    const std::string cmd = argv[1];
    if (cmd == "gen") {
        return cmd_gen(argc - 2, argv + 2);
    }
    if (cmd == "validate") {
        return cmd_validate(argc - 2, argv + 2);
    }
    if (cmd == "replay") {
        return cmd_replay(argc - 2, argv + 2);
    }
    if (cmd == "run") {
        return cmd_run(argc - 2, argv + 2);
    }
    if (cmd == "stats") {
        return cmd_stats(argc - 2, argv + 2);
    }
    if (cmd == "selftest") {
        return cmd_selftest(argc >= 3 ? argv[2] : ".");
    }
    return usage();
}
